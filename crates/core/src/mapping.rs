//! The declarative mapping from a federated function to local functions.
//!
//! A [`MappingSpec`] is the architecture-independent description of a
//! federated function: the *precedence graph* of Fig. 1. Every
//! architecture in [`crate::arch`] compiles the same spec — into a
//! workflow process, a SQL I-UDTF, or a native program — which is what
//! makes the paper's capability and performance comparisons apples to
//! apples.

use fedwf_types::{DataType, FedError, FedResult, Ident, Value};

/// Where a local-function argument (or an output field) takes its value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgSource {
    /// A parameter of the federated function.
    Param(Ident),
    /// An output column of another local call.
    Output { call: Ident, column: Ident },
    /// A constant supplied by the mapping (the simple case).
    Constant(Value),
    /// The loop counter (only inside a cyclic spec's body).
    Counter,
}

impl ArgSource {
    pub fn param(name: &str) -> ArgSource {
        ArgSource::Param(Ident::new(name))
    }

    pub fn output(call: &str, column: &str) -> ArgSource {
        ArgSource::Output {
            call: Ident::new(call),
            column: Ident::new(column),
        }
    }

    pub fn constant(v: impl Into<Value>) -> ArgSource {
        ArgSource::Constant(v.into())
    }
}

/// One local function call in the mapping graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalCall {
    /// Node id, unique within the spec (doubles as the SQL correlation
    /// name and the workflow activity name).
    pub id: Ident,
    /// The predefined local function to invoke.
    pub function: String,
    /// Arguments, positionally matching the local function's parameters.
    pub args: Vec<ArgSource>,
    /// Explicit control-flow predecessors beyond the data dependencies —
    /// production workflow systems allow control connectors without data
    /// connectors, and the UDTF architectures execute FROM items
    /// left-to-right anyway, so ordering hints cost them nothing.
    pub after: Vec<Ident>,
    /// Total attempts the integration layer should make for this call
    /// (1 = no retry). Only the WfMS architecture can honour this — its
    /// per-activity error handling is one of the paper's arguments for the
    /// workflow engine; the UDTF architectures fail on the first error.
    pub max_attempts: u32,
}

impl LocalCall {
    pub fn new(id: &str, function: &str, args: Vec<ArgSource>) -> LocalCall {
        LocalCall {
            id: Ident::new(id),
            function: function.to_string(),
            args,
            after: vec![],
            max_attempts: 1,
        }
    }

    /// Add explicit control predecessors.
    pub fn after(mut self, ids: &[&str]) -> LocalCall {
        self.after.extend(ids.iter().map(|s| Ident::new(*s)));
        self
    }

    /// Request up to `attempts` tries (1 = no retry).
    pub fn with_retry(mut self, attempts: u32) -> LocalCall {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Ids of calls this call *data*-depends on (argument flow).
    pub fn depends_on(&self) -> Vec<&Ident> {
        self.args
            .iter()
            .filter_map(|a| match a {
                ArgSource::Output { call, .. } => Some(call),
                _ => None,
            })
            .collect()
    }

    /// All control predecessors: data dependencies plus explicit ordering.
    pub fn control_deps(&self) -> Vec<&Ident> {
        let mut deps = self.depends_on();
        deps.extend(self.after.iter());
        deps.sort();
        deps.dedup();
        deps
    }
}

/// One output field of the federated function.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputField {
    pub name: Ident,
    /// Declared type; when it differs from the source's type, the mapping
    /// performs an explicit cast (cast function / helper activity).
    pub data_type: DataType,
    pub source: ArgSource,
}

impl OutputField {
    pub fn new(name: &str, data_type: DataType, source: ArgSource) -> OutputField {
        OutputField {
            name: Ident::new(name),
            data_type,
            source,
        }
    }
}

/// How the federated function's result table is assembled.
#[derive(Debug, Clone, PartialEq)]
pub enum FedOutput {
    /// The whole result table of one call (possibly multi-row).
    FromCall(Ident),
    /// A single row assembled from sources (with casts where declared
    /// types differ).
    Row(Vec<OutputField>),
    /// Compose the result *sets* of two independent calls with a join
    /// predicate — the independent case's "join with selection".
    Join {
        left: Ident,
        right: Ident,
        left_on: Ident,
        right_on: Ident,
        /// (take from left?, source column, output name)
        project: Vec<(bool, Ident, Ident)>,
    },
}

/// The cyclic-dependency extension: a do-until loop over one local call.
#[derive(Debug, Clone, PartialEq)]
pub struct CyclicSpec {
    /// First counter value.
    pub counter_init: i32,
    /// The body call, invoked once per iteration; its args may use
    /// [`ArgSource::Counter`].
    pub body: LocalCall,
    /// Loop while `counter <= limit`; the limit comes from this source
    /// (often the output of a preceding call such as `GetCompCount`).
    pub limit: ArgSource,
    /// Accumulate the body's rows into the federated result.
    pub accumulate: bool,
    /// Safety bound.
    pub max_iterations: usize,
}

/// The complete mapping of one federated function.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingSpec {
    pub name: Ident,
    pub params: Vec<(Ident, DataType)>,
    /// Acyclic local calls (the loop body, if any, lives in `cyclic`).
    pub calls: Vec<LocalCall>,
    pub cyclic: Option<CyclicSpec>,
    pub output: FedOutput,
}

impl MappingSpec {
    #[allow(clippy::new_ret_no_self)] // the builder is the intended entry point
    pub fn new(name: &str, params: &[(&str, DataType)]) -> MappingSpecBuilder {
        MappingSpecBuilder {
            name: Ident::new(name),
            params: params.iter().map(|(n, t)| (Ident::new(*n), *t)).collect(),
            calls: vec![],
            cyclic: None,
        }
    }

    pub fn call(&self, id: &Ident) -> Option<&LocalCall> {
        self.calls.iter().find(|c| &c.id == id)
    }

    pub fn has_param(&self, name: &Ident) -> bool {
        self.params.iter().any(|(n, _)| n == name)
    }

    /// Local calls in dependency (topological) order; errors on cycles in
    /// the acyclic part — cycles belong in [`CyclicSpec`].
    pub fn topo_calls(&self) -> FedResult<Vec<&LocalCall>> {
        let mut order: Vec<&LocalCall> = Vec::with_capacity(self.calls.len());
        let mut placed: Vec<bool> = vec![false; self.calls.len()];
        loop {
            let mut progressed = false;
            for (i, call) in self.calls.iter().enumerate() {
                if placed[i] {
                    continue;
                }
                let ready = call
                    .control_deps()
                    .iter()
                    .all(|dep| order.iter().any(|c| &c.id == *dep));
                if ready {
                    placed[i] = true;
                    order.push(call);
                    progressed = true;
                }
            }
            if order.len() == self.calls.len() {
                return Ok(order);
            }
            if !progressed {
                return Err(FedError::plan(format!(
                    "mapping {} has a dependency cycle among its local calls — model it with a CyclicSpec",
                    self.name
                )));
            }
        }
    }

    /// Total number of local function invocations for one federated call,
    /// assuming `loop_iterations` iterations of the cyclic part.
    pub fn local_call_count(&self, loop_iterations: usize) -> usize {
        self.calls.len() + self.cyclic.as_ref().map_or(0, |_| loop_iterations)
    }

    /// Validate structural integrity: unique ids, resolvable references,
    /// counters only inside the loop body, loop limits resolvable.
    pub fn validate(&self) -> FedResult<()> {
        let err = |m: String| Err(FedError::plan(format!("mapping {}: {m}", self.name)));
        let mut seen = std::collections::HashSet::new();
        for c in &self.calls {
            if !seen.insert(c.id.clone()) {
                return err(format!("duplicate call id {}", c.id));
            }
        }
        if let Some(cy) = &self.cyclic {
            if !seen.insert(cy.body.id.clone()) {
                return err(format!("loop body id {} clashes", cy.body.id));
            }
            if cy.max_iterations == 0 {
                return err("max_iterations must be >= 1".into());
            }
        }
        let check_source = |s: &ArgSource, in_loop_body: bool| -> FedResult<()> {
            match s {
                ArgSource::Param(p) => {
                    if self.has_param(p) {
                        Ok(())
                    } else {
                        Err(FedError::plan(format!(
                            "mapping {}: unknown federated parameter {p}",
                            self.name
                        )))
                    }
                }
                ArgSource::Output { call, .. } => {
                    if self.call(call).is_some() {
                        Ok(())
                    } else {
                        Err(FedError::plan(format!(
                            "mapping {}: reference to unknown call {call}",
                            self.name
                        )))
                    }
                }
                ArgSource::Constant(_) => Ok(()),
                ArgSource::Counter => {
                    if in_loop_body {
                        Ok(())
                    } else {
                        Err(FedError::plan(format!(
                            "mapping {}: Counter outside the loop body",
                            self.name
                        )))
                    }
                }
            }
        };
        for c in &self.calls {
            for a in &c.args {
                check_source(a, false)?;
            }
            for dep in &c.after {
                if self.call(dep).is_none() {
                    return err(format!("call {} is ordered after unknown call {dep}", c.id));
                }
            }
        }
        if let Some(cy) = &self.cyclic {
            for a in &cy.body.args {
                check_source(a, true)?;
            }
            check_source(&cy.limit, false)?;
        }
        match &self.output {
            FedOutput::FromCall(id) => {
                let in_calls = self.call(id).is_some();
                let is_loop = self
                    .cyclic
                    .as_ref()
                    .map(|cy| &cy.body.id == id)
                    .unwrap_or(false);
                if !in_calls && !is_loop {
                    return err(format!("output references unknown call {id}"));
                }
            }
            FedOutput::Row(fields) => {
                let mut names = std::collections::HashSet::new();
                for f in fields {
                    if !names.insert(f.name.clone()) {
                        return err(format!("duplicate output field {}", f.name));
                    }
                    check_source(&f.source, false)?;
                }
            }
            FedOutput::Join { left, right, .. } => {
                for id in [left, right] {
                    if self.call(id).is_none() {
                        return err(format!("join output references unknown call {id}"));
                    }
                }
            }
        }
        // The acyclic part must actually be acyclic.
        self.topo_calls()?;
        Ok(())
    }
}

/// Builder for [`MappingSpec`].
pub struct MappingSpecBuilder {
    name: Ident,
    params: Vec<(Ident, DataType)>,
    calls: Vec<LocalCall>,
    cyclic: Option<CyclicSpec>,
}

impl MappingSpecBuilder {
    pub fn call(mut self, id: &str, function: &str, args: Vec<ArgSource>) -> Self {
        self.calls.push(LocalCall::new(id, function, args));
        self
    }

    /// Add a call with explicit control-flow predecessors beyond its data
    /// dependencies.
    pub fn call_after(
        mut self,
        id: &str,
        function: &str,
        args: Vec<ArgSource>,
        after: &[&str],
    ) -> Self {
        self.calls
            .push(LocalCall::new(id, function, args).after(after));
        self
    }

    /// Set the retry budget of the most recently added call.
    pub fn retry(mut self, attempts: u32) -> Self {
        if let Some(last) = self.calls.last_mut() {
            last.max_attempts = attempts.max(1);
        }
        self
    }

    pub fn cyclic(mut self, spec: CyclicSpec) -> Self {
        self.cyclic = Some(spec);
        self
    }

    pub fn output_from_call(self, id: &str) -> FedResult<MappingSpec> {
        self.finish(FedOutput::FromCall(Ident::new(id)))
    }

    pub fn output_row(self, fields: Vec<OutputField>) -> FedResult<MappingSpec> {
        self.finish(FedOutput::Row(fields))
    }

    pub fn output_join(
        self,
        left: &str,
        right: &str,
        left_on: &str,
        right_on: &str,
        project: &[(bool, &str, &str)],
    ) -> FedResult<MappingSpec> {
        self.finish(FedOutput::Join {
            left: Ident::new(left),
            right: Ident::new(right),
            left_on: Ident::new(left_on),
            right_on: Ident::new(right_on),
            project: project
                .iter()
                .map(|(l, s, o)| (*l, Ident::new(*s), Ident::new(*o)))
                .collect(),
        })
    }

    fn finish(self, output: FedOutput) -> FedResult<MappingSpec> {
        let spec = MappingSpec {
            name: self.name,
            params: self.params,
            calls: self.calls,
            cyclic: self.cyclic,
            output,
        };
        spec.validate()?;
        Ok(spec)
    }
}

pub use OutputField as Field;

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_spec() -> MappingSpec {
        MappingSpec::new("GetSuppQual", &[("SupplierName", DataType::Varchar)])
            .call(
                "GetSupplierNo",
                "GetSupplierNo",
                vec![ArgSource::param("SupplierName")],
            )
            .call(
                "GetQuality",
                "GetQuality",
                vec![ArgSource::output("GetSupplierNo", "SupplierNo")],
            )
            .output_from_call("GetQuality")
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_spec() {
        let spec = linear_spec();
        assert_eq!(spec.calls.len(), 2);
        assert_eq!(spec.local_call_count(0), 2);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let spec = linear_spec();
        let order = spec.topo_calls().unwrap();
        assert_eq!(order[0].id, Ident::new("GetSupplierNo"));
        assert_eq!(order[1].id, Ident::new("GetQuality"));
    }

    #[test]
    fn unknown_references_rejected() {
        let r = MappingSpec::new("Bad", &[])
            .call("A", "F", vec![ArgSource::param("missing")])
            .output_from_call("A");
        assert!(r.is_err());
        let r = MappingSpec::new("Bad2", &[])
            .call("A", "F", vec![ArgSource::output("Ghost", "x")])
            .output_from_call("A");
        assert!(r.is_err());
    }

    #[test]
    fn cycle_in_acyclic_part_rejected() {
        let r = MappingSpec::new("Cycle", &[])
            .call("A", "F", vec![ArgSource::output("B", "x")])
            .call("B", "G", vec![ArgSource::output("A", "y")])
            .output_from_call("A");
        assert!(r.unwrap_err().to_string().contains("cycle"));
    }

    #[test]
    fn counter_only_in_loop_body() {
        let r = MappingSpec::new("Bad", &[])
            .call("A", "F", vec![ArgSource::Counter])
            .output_from_call("A");
        assert!(r.is_err());
        let ok = MappingSpec::new("Loop", &[])
            .call("Count", "GetCompCount", vec![])
            .cyclic(CyclicSpec {
                counter_init: 1,
                body: LocalCall::new("Body", "GetCompName", vec![ArgSource::Counter]),
                limit: ArgSource::output("Count", "N"),
                accumulate: true,
                max_iterations: 1000,
            })
            .output_from_call("Body");
        assert!(ok.is_ok());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let r = MappingSpec::new("Dup", &[])
            .call("A", "F", vec![])
            .call("A", "G", vec![])
            .output_from_call("A");
        assert!(r.is_err());
    }

    #[test]
    fn join_output_validates_references() {
        let r = MappingSpec::new("J", &[])
            .call("L", "F", vec![])
            .output_join("L", "Ghost", "a", "b", &[]);
        assert!(r.is_err());
    }

    #[test]
    fn depends_on_lists_output_sources() {
        let c = LocalCall::new(
            "X",
            "F",
            vec![
                ArgSource::param("p"),
                ArgSource::output("A", "x"),
                ArgSource::output("B", "y"),
                ArgSource::constant(1),
            ],
        );
        let deps: Vec<String> = c.depends_on().iter().map(|d| d.to_string()).collect();
        assert_eq!(deps, vec!["A", "B"]);
    }

    #[test]
    fn local_call_count_includes_loop() {
        let spec = MappingSpec::new("Loop", &[])
            .call("Count", "GetCompCount", vec![])
            .cyclic(CyclicSpec {
                counter_init: 1,
                body: LocalCall::new("Body", "GetCompName", vec![ArgSource::Counter]),
                limit: ArgSource::output("Count", "N"),
                accumulate: true,
                max_iterations: 1000,
            })
            .output_from_call("Body")
            .unwrap();
        assert_eq!(spec.local_call_count(20), 21);
    }
}
