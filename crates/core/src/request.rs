//! The unified client API of the integration server: one [`Request`]
//! describes *what* to run (a deployed federated function or raw SQL),
//! *with which* parameters, and *how* (deadline, tracing); one [`Outcome`]
//! carries everything a client can ask about the execution — the result
//! table, the virtual-time accounting, the span tree when tracing was on,
//! and the server-metrics delta the request caused.
//!
//! ```
//! use fedwf_core::{paper_functions, ArchitectureKind, IntegrationServer, Request};
//!
//! let server = IntegrationServer::with_architecture(ArchitectureKind::Wfms)?;
//! server.boot();
//! server.deploy(&paper_functions::get_supp_qual())?;
//! let outcome = server.execute(
//!     &Request::function("GetSuppQual")
//!         .arg(server.scenario().well_known_supplier_name())
//!         .traced(true),
//! )?;
//! assert_eq!(outcome.table.value(0, "Qual"), Some(&fedwf_types::Value::Int(93)));
//! let trace = outcome.trace.as_ref().expect("tracing was requested");
//! assert!(trace.find("fdbs.execute").is_some());
//! # Ok::<(), fedwf_types::FedError>(())
//! ```
//!
use std::time::Duration;

use fedwf_fdbs::ExecOptions;
use fedwf_sim::{Breakdown, Meter, MetricsSnapshot, TraceDetail, TraceNode};
use fedwf_types::{Params, Table, Value};

/// What a [`Request`] executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A deployed federated function, called by name.
    Function(String),
    /// An arbitrary SQL statement against the FDBS (which may itself
    /// invoke federated functions as table functions).
    Sql(String),
}

/// One request against the integration server: target, parameters, and
/// execution options. Build with [`Request::function`] / [`Request::sql`]
/// and the chainable setters; execute with
/// [`crate::IntegrationServer::execute`] or
/// [`crate::ServerFront::execute`].
#[derive(Debug, Clone)]
pub struct Request {
    target: Target,
    params: Params,
    deadline: Option<Duration>,
    trace: bool,
    trace_detail: TraceDetail,
    exec_options: Option<ExecOptions>,
}

impl Request {
    /// A request calling the deployed federated function `name`.
    pub fn function(name: impl Into<String>) -> Request {
        Request {
            target: Target::Function(name.into()),
            params: Params::new(),
            deadline: None,
            trace: false,
            trace_detail: TraceDetail::Full,
            exec_options: None,
        }
    }

    /// A request running a SQL statement against the FDBS.
    pub fn sql(sql: impl Into<String>) -> Request {
        Request {
            target: Target::Sql(sql.into()),
            params: Params::new(),
            deadline: None,
            trace: false,
            trace_detail: TraceDetail::Full,
            exec_options: None,
        }
    }

    /// Replace the whole parameter set at once.
    pub fn params(mut self, params: impl Into<Params>) -> Self {
        self.params = params.into();
        self
    }

    /// Append one positional argument.
    pub fn arg(mut self, value: impl Into<Value>) -> Self {
        self.params = self.params.arg(value);
        self
    }

    /// Bind one named parameter.
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.params = self.params.bind(name, value);
        self
    }

    /// Set a deadline covering queueing *and* execution. Honoured by
    /// [`crate::ServerFront::execute`]; the in-process
    /// [`crate::IntegrationServer::execute`] ignores it (there is no queue
    /// to wait in).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Request a hierarchical span tree of the execution. Off by default;
    /// when off the execution is byte-identical to an untraced one.
    pub fn traced(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// How deep the span tree goes when tracing is on. Defaults to
    /// [`TraceDetail::Full`]; [`TraceDetail::Coarse`] keeps the
    /// request/engine/process levels but skips per-activity and
    /// per-local-function spans, cutting most of tracing's wall overhead
    /// (component breakdowns stay exact — skipped spans' charges land in
    /// the nearest recorded ancestor).
    pub fn trace_detail(mut self, detail: TraceDetail) -> Self {
        self.trace_detail = detail;
        self
    }

    /// Engine options ([`ExecOptions`]: executor, vectorization, pruning,
    /// memoization, planner mode) to apply before this request executes.
    /// The options *stick*: they stay in effect for later requests until
    /// another request (or [`fedwf_fdbs::Fdbs::set_options`]) replaces
    /// them. The FDBS plan cache keys on the full options value, so
    /// flipping them never serves a stale plan.
    pub fn exec_options(mut self, options: ExecOptions) -> Self {
        self.exec_options = Some(options);
        self
    }

    pub fn target(&self) -> &Target {
        &self.target
    }

    pub fn params_ref(&self) -> &Params {
        &self.params
    }

    pub fn deadline_opt(&self) -> Option<Duration> {
        self.deadline
    }

    pub fn trace_requested(&self) -> bool {
        self.trace
    }

    pub fn trace_detail_opt(&self) -> TraceDetail {
        self.trace_detail
    }

    pub fn exec_options_opt(&self) -> Option<ExecOptions> {
        self.exec_options
    }

    /// A short label for logs and error messages.
    pub fn label(&self) -> &str {
        match &self.target {
            Target::Function(name) => name,
            Target::Sql(sql) => sql,
        }
    }
}

/// Everything known about one executed [`Request`].
#[derive(Debug)]
pub struct Outcome {
    /// The result table.
    pub table: Table,
    /// The complete virtual-time accounting of the execution.
    pub meter: Meter,
    /// The span tree, present iff the request asked for tracing.
    pub trace: Option<TraceNode>,
    /// Delta of the server's metrics registry across this request.
    pub metrics_delta: MetricsSnapshot,
}

impl Outcome {
    /// Elapsed virtual time of the execution.
    pub fn elapsed_us(&self) -> u64 {
        self.meter.now_us()
    }

    /// Fig. 6-style step breakdown from the charge log.
    pub fn breakdown_by_step(&self, title: &str) -> Breakdown {
        Breakdown::by_step(title, self.meter.charges(), self.meter.now_us())
    }

    /// Component breakdown (controller share, RMI share, ...) from the
    /// charge log.
    pub fn breakdown_by_component(&self, title: &str) -> Breakdown {
        Breakdown::by_component(title, self.meter.charges(), self.meter.now_us())
    }

    /// Component breakdown derived from the span tree instead of the flat
    /// charge log — agrees with [`Outcome::breakdown_by_component`] when
    /// tracing was on (every charge lands in some span).
    pub fn trace_breakdown(&self, title: &str) -> Option<Breakdown> {
        self.trace
            .as_ref()
            .map(|t| t.component_breakdown(title, self.meter.now_us()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_params_and_options() {
        let r = Request::function("BuySuppComp")
            .arg(1234)
            .bind("Comp", "C30")
            .deadline(Duration::from_secs(3))
            .traced(true);
        assert_eq!(r.target(), &Target::Function("BuySuppComp".into()));
        assert_eq!(r.params_ref().positional(), &[Value::Int(1234)]);
        assert_eq!(r.params_ref().named_value("Comp"), Some(&Value::str("C30")));
        assert_eq!(r.deadline_opt(), Some(Duration::from_secs(3)));
        assert!(r.trace_requested());
        assert_eq!(r.label(), "BuySuppComp");
    }

    #[test]
    fn sql_request_defaults() {
        let r = Request::sql("SELECT 1").params([("S", Value::Int(7))]);
        assert!(matches!(r.target(), Target::Sql(_)));
        assert!(!r.trace_requested());
        assert_eq!(r.deadline_opt(), None);
        assert_eq!(r.params_ref().named_value("S"), Some(&Value::Int(7)));
    }
}
