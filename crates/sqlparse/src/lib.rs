//! # fedwf-sql
//!
//! Lexer, parser and AST for the DB2-flavoured SQL dialect the paper uses.
//! The dialect's distinguishing features, all of which appear verbatim in
//! the paper's examples, are:
//!
//! * table functions in the FROM clause — `TABLE (GetQuality(SupplierNo))
//!   AS GQ` — with a *mandatory* correlation name and left-to-right
//!   evaluation, where later items may reference output columns of earlier
//!   items (the lateral dependency that encodes the precedence structure of
//!   local function calls);
//! * `CREATE FUNCTION name (params) RETURNS TABLE (cols) LANGUAGE SQL
//!   RETURN select` — the SQL integration UDTFs (I-UDTFs), whose bodies may
//!   reference their own parameters as `FunctionName.ParamName`;
//! * cast functions such as `BIGINT(expr)` used by the *simple case*
//!   mapping.
//!
//! Besides these, the grammar covers ordinary SELECT / CREATE TABLE /
//! INSERT / UPDATE / DELETE / DROP so the FDBS is usable as a database.
//!
//! The parser is a hand-written recursive-descent/precedence-climbing
//! parser over a standalone lexer; the AST pretty-prints back to SQL
//! (`Display`), and `parse(pretty(ast)) == ast` is property-tested.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    BinaryOp, ColumnDef, CreateFunctionStmt, Expr, FromItem, OrderByItem, ParamDef, SelectItem,
    SelectStmt, Statement, UnaryOp,
};
pub use lexer::{Keyword, Lexer, Token, TokenKind};
pub use parser::{parse_expression, parse_statement, parse_statements, Parser};
