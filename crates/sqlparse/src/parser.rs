//! Recursive-descent parser with precedence climbing for expressions.

use fedwf_types::{DataType, FedError, FedResult, Ident, QualifiedName, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Keyword, Token, TokenKind};

/// The parser over a token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub fn new(sql: &str) -> FedResult<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, n: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + n).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos)?.kind.clone();
        self.pos += 1;
        Some(t)
    }

    fn error_here(&self, expected: &str) -> FedError {
        match self.tokens.get(self.pos) {
            Some(t) => FedError::parse(format!(
                "expected {expected}, found {} at offset {}",
                t.kind, t.offset
            )),
            None => FedError::parse(format!("expected {expected}, found end of input")),
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek() == Some(&TokenKind::Keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> FedResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(&format!("{kw:?}")))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> FedResult<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error_here(&kind.to_string()))
        }
    }

    fn expect_ident(&mut self) -> FedResult<Ident> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => {
                if let Some(TokenKind::Ident(s)) = self.bump() {
                    Ok(Ident::new(s))
                } else {
                    unreachable!("peeked an identifier")
                }
            }
            _ => Err(self.error_here("identifier")),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    // ---- statements ----------------------------------------------------

    /// Parse exactly one statement; trailing semicolon allowed.
    pub fn parse_single_statement(&mut self) -> FedResult<Statement> {
        let stmt = self.parse_statement_inner()?;
        self.eat(&TokenKind::Semicolon);
        if !self.at_end() {
            return Err(self.error_here("end of statement"));
        }
        Ok(stmt)
    }

    /// Parse a semicolon-separated script.
    pub fn parse_script(&mut self) -> FedResult<Vec<Statement>> {
        let mut out = Vec::new();
        while !self.at_end() {
            if self.eat(&TokenKind::Semicolon) {
                continue;
            }
            out.push(self.parse_statement_inner()?);
            if !self.at_end() {
                self.expect(&TokenKind::Semicolon)?;
            }
        }
        Ok(out)
    }

    fn parse_statement_inner(&mut self) -> FedResult<Statement> {
        match self.peek() {
            Some(TokenKind::Keyword(Keyword::Select)) => {
                Ok(Statement::Select(self.parse_select()?))
            }
            Some(TokenKind::Keyword(Keyword::Create)) => self.parse_create(),
            Some(TokenKind::Keyword(Keyword::Insert)) => self.parse_insert(),
            Some(TokenKind::Keyword(Keyword::Update)) => self.parse_update(),
            Some(TokenKind::Keyword(Keyword::Delete)) => self.parse_delete(),
            Some(TokenKind::Keyword(Keyword::Drop)) => self.parse_drop(),
            Some(TokenKind::Keyword(Keyword::Explain)) => {
                self.bump();
                let analyze = self.eat_keyword(Keyword::Analyze);
                let inner = self.parse_statement_inner()?;
                Ok(if analyze {
                    Statement::ExplainAnalyze(Box::new(inner))
                } else {
                    Statement::Explain(Box::new(inner))
                })
            }
            _ => Err(self.error_here("a statement")),
        }
    }

    fn parse_create(&mut self) -> FedResult<Statement> {
        self.expect_keyword(Keyword::Create)?;
        if self.eat_keyword(Keyword::Table) {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::LParen)?;
            let columns = self.parse_column_defs()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.eat_keyword(Keyword::Function) {
            return self.parse_create_function();
        }
        let unique = self.eat_keyword(Keyword::Unique);
        if self.eat_keyword(Keyword::Index) {
            let name = self.expect_ident()?;
            self.expect_keyword(Keyword::On)?;
            let table = self.expect_ident()?;
            self.expect(&TokenKind::LParen)?;
            let column = self.expect_ident()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            });
        }
        Err(self.error_here("TABLE, FUNCTION or [UNIQUE] INDEX after CREATE"))
    }

    fn parse_create_function(&mut self) -> FedResult<Statement> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                let pname = self.expect_ident()?;
                let data_type = self.parse_data_type()?;
                params.push(ParamDef {
                    name: pname,
                    data_type,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect_keyword(Keyword::Returns)?;
        self.expect_keyword(Keyword::Table)?;
        self.expect(&TokenKind::LParen)?;
        let returns = self.parse_column_defs()?;
        self.expect(&TokenKind::RParen)?;
        self.expect_keyword(Keyword::Language)?;
        self.expect_keyword(Keyword::Sql)?;
        self.expect_keyword(Keyword::Return)?;
        let body = self.parse_select()?;
        Ok(Statement::CreateFunction(CreateFunctionStmt {
            name,
            params,
            returns,
            body,
        }))
    }

    fn parse_column_defs(&mut self) -> FedResult<Vec<ColumnDef>> {
        let mut out = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let data_type = self.parse_data_type()?;
            let mut not_null = false;
            if self.eat_keyword(Keyword::Not) {
                self.expect_keyword(Keyword::Null)?;
                not_null = true;
            }
            out.push(ColumnDef {
                name,
                data_type,
                not_null,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn parse_data_type(&mut self) -> FedResult<DataType> {
        let ident = self.expect_ident()?;
        let dt = DataType::parse(ident.as_str())
            .ok_or_else(|| FedError::parse(format!("unknown data type {ident}")))?;
        // Optional length such as VARCHAR(30): parsed and ignored.
        if self.eat(&TokenKind::LParen) {
            match self.bump() {
                Some(TokenKind::Integer(_)) => {}
                _ => return Err(self.error_here("type length")),
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(dt)
    }

    fn parse_insert(&mut self) -> FedResult<Statement> {
        self.expect_keyword(Keyword::Insert)?;
        self.expect_keyword(Keyword::Into)?;
        let table = self.expect_ident()?;
        let columns = if self.eat(&TokenKind::LParen) {
            let mut cols = vec![self.expect_ident()?];
            while self.eat(&TokenKind::Comma) {
                cols.push(self.expect_ident()?);
            }
            self.expect(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                row.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> FedResult<Statement> {
        self.expect_keyword(Keyword::Update)?;
        let table = self.expect_ident()?;
        self.expect_keyword(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            let expr = self.parse_expr()?;
            assignments.push((col, expr));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let selection = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            selection,
        })
    }

    fn parse_delete(&mut self) -> FedResult<Statement> {
        self.expect_keyword(Keyword::Delete)?;
        self.expect_keyword(Keyword::From)?;
        let table = self.expect_ident()?;
        let selection = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, selection })
    }

    fn parse_drop(&mut self) -> FedResult<Statement> {
        self.expect_keyword(Keyword::Drop)?;
        if self.eat_keyword(Keyword::Table) {
            Ok(Statement::DropTable {
                name: self.expect_ident()?,
            })
        } else if self.eat_keyword(Keyword::Function) {
            Ok(Statement::DropFunction {
                name: self.expect_ident()?,
            })
        } else {
            Err(self.error_here("TABLE or FUNCTION after DROP"))
        }
    }

    // ---- SELECT ---------------------------------------------------------

    pub fn parse_select(&mut self) -> FedResult<SelectStmt> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.eat_keyword(Keyword::Distinct);
        let mut projection = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            projection.push(self.parse_select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_keyword(Keyword::From) {
            from.push(self.parse_from_item()?);
            while self.eat(&TokenKind::Comma) {
                from.push(self.parse_from_item()?);
            }
        }
        let selection = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.parse_expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.eat_keyword(Keyword::Desc) {
                    false
                } else {
                    self.eat_keyword(Keyword::Asc);
                    true
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword(Keyword::Limit) {
            match self.bump() {
                Some(TokenKind::Integer(n)) if n >= 0 => Some(n as u64),
                _ => return Err(self.error_here("non-negative LIMIT count")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projection,
            from,
            selection,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> FedResult<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(TokenKind::Ident(_)), Some(TokenKind::Dot), Some(TokenKind::Star)) =
            (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let alias = self.expect_ident()?;
            self.expect(&TokenKind::Dot)?;
            self.expect(&TokenKind::Star)?;
            return Ok(SelectItem::QualifiedWildcard(alias));
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let Some(TokenKind::Ident(_)) = self.peek() {
            // Bare alias (no AS).
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> FedResult<FromItem> {
        if self.eat_keyword(Keyword::Table) {
            // TABLE ( func(args) ) AS alias — the alias is mandatory, as in
            // the DB2 dialect the paper used.
            self.expect(&TokenKind::LParen)?;
            let name = self.expect_ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut args = Vec::new();
            if self.peek() != Some(&TokenKind::RParen) {
                args.push(self.parse_expr()?);
                while self.eat(&TokenKind::Comma) {
                    args.push(self.parse_expr()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::RParen)?;
            self.expect_keyword(Keyword::As)?;
            let alias = self.expect_ident()?;
            return Ok(FromItem::TableFunction { name, args, alias });
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let Some(TokenKind::Ident(_)) = self.peek() {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(FromItem::Table { name, alias })
    }

    // ---- expressions ----------------------------------------------------

    /// Parse an expression (public entry point used by tests/tools).
    pub fn parse_expr(&mut self) -> FedResult<Expr> {
        self.parse_expr_prec(0)
    }

    fn parse_expr_prec(&mut self, min_prec: u8) -> FedResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            // Postfix IS [NOT] NULL binds tighter than comparisons.
            if self.peek() == Some(&TokenKind::Keyword(Keyword::Is)) {
                self.bump();
                let negated = self.eat_keyword(Keyword::Not);
                self.expect_keyword(Keyword::Null)?;
                lhs = Expr::IsNull {
                    expr: Box::new(lhs),
                    negated,
                };
                continue;
            }
            let op = match self.peek() {
                Some(TokenKind::Keyword(Keyword::Or)) => BinaryOp::Or,
                Some(TokenKind::Keyword(Keyword::And)) => BinaryOp::And,
                Some(TokenKind::Eq) => BinaryOp::Eq,
                Some(TokenKind::NotEq) => BinaryOp::NotEq,
                Some(TokenKind::Lt) => BinaryOp::Lt,
                Some(TokenKind::LtEq) => BinaryOp::LtEq,
                Some(TokenKind::Gt) => BinaryOp::Gt,
                Some(TokenKind::GtEq) => BinaryOp::GtEq,
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                Some(TokenKind::Concat) => BinaryOp::Concat,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            // Left-associative: the right side must bind strictly tighter.
            let rhs = self.parse_expr_prec(prec + 1)?;
            lhs = Expr::Binary {
                left: Box::new(lhs),
                op,
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> FedResult<Expr> {
        if self.eat_keyword(Keyword::Not) {
            // NOT binds looser than comparisons but tighter than AND.
            let expr = self.parse_expr_prec(3)?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            });
        }
        if self.eat(&TokenKind::Minus) {
            let expr = self.parse_unary()?;
            // Fold negative literals immediately.
            return Ok(match expr {
                Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                Expr::Literal(Value::BigInt(v)) => Expr::Literal(Value::BigInt(-v)),
                Expr::Literal(Value::Double(v)) => Expr::Literal(Value::Double(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> FedResult<Expr> {
        match self.peek().cloned() {
            Some(TokenKind::Integer(v)) => {
                self.bump();
                // SQL INTEGER literals that fit i32 are INT, else BIGINT.
                Ok(Expr::Literal(match i32::try_from(v) {
                    Ok(small) => Value::Int(small),
                    Err(_) => Value::BigInt(v),
                }))
            }
            Some(TokenKind::Float(v)) => {
                self.bump();
                Ok(Expr::Literal(Value::Double(v)))
            }
            Some(TokenKind::String(s)) => {
                self.bump();
                Ok(Expr::Literal(Value::Varchar(s.into())))
            }
            Some(TokenKind::Keyword(Keyword::Null)) => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            Some(TokenKind::Keyword(Keyword::True)) => {
                self.bump();
                Ok(Expr::Literal(Value::Boolean(true)))
            }
            Some(TokenKind::Keyword(Keyword::False)) => {
                self.bump();
                Ok(Expr::Literal(Value::Boolean(false)))
            }
            Some(TokenKind::Keyword(Keyword::Cast)) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_keyword(Keyword::As)?;
                let data_type = self.parse_data_type()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(expr),
                    data_type,
                })
            }
            Some(TokenKind::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(_)) => {
                let first = self.expect_ident()?;
                // Function call?
                if self.peek() == Some(&TokenKind::LParen) {
                    self.bump();
                    // COUNT(*) — the star form carries no argument.
                    if first == Ident::new("COUNT") && self.peek() == Some(&TokenKind::Star) {
                        self.bump();
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Function {
                            name: first,
                            args: vec![],
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RParen) {
                        args.push(self.parse_expr()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Function { name: first, args });
                }
                // Qualified column?
                if self.eat(&TokenKind::Dot) {
                    let second = self.expect_ident()?;
                    return Ok(Expr::Column(QualifiedName {
                        qualifier: Some(first),
                        name: second,
                    }));
                }
                Ok(Expr::Column(QualifiedName {
                    qualifier: None,
                    name: first,
                }))
            }
            _ => Err(self.error_here("an expression")),
        }
    }
}

/// Parse exactly one statement.
pub fn parse_statement(sql: &str) -> FedResult<Statement> {
    Parser::new(sql)?.parse_single_statement()
}

/// Parse a semicolon-separated script.
pub fn parse_statements(sql: &str) -> FedResult<Vec<Statement>> {
    Parser::new(sql)?.parse_script()
}

/// Parse a standalone scalar expression.
pub fn parse_expression(sql: &str) -> FedResult<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.parse_expr()?;
    if !p.at_end() {
        return Err(FedError::parse("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_buysuppcomp_select() {
        // Verbatim from the paper (simple UDTF architecture).
        let sql = "SELECT DP.Answer
            FROM TABLE (GetQuality(SupplierNo)) AS GQ,
                 TABLE (GetReliability(SupplierNo)) AS GR,
                 TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG,
                 TABLE (GetCompNo(CompName)) AS GCN,
                 TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP";
        let stmt = parse_statement(sql).unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected select")
        };
        assert_eq!(sel.from.len(), 5);
        assert_eq!(sel.projection.len(), 1);
        let FromItem::TableFunction { name, args, alias } = &sel.from[2] else {
            panic!("expected table function")
        };
        assert_eq!(name, &Ident::new("GetGrade"));
        assert_eq!(alias, &Ident::new("GG"));
        assert_eq!(args.len(), 2);
        assert_eq!(args[0], Expr::col("GQ", "Qual"));
    }

    #[test]
    fn parses_the_create_function_statement() {
        // Verbatim from the paper (enhanced SQL UDTF architecture).
        let sql = "CREATE FUNCTION BuySuppComp (SupplierNo INT, CompName VARCHAR)
            RETURNS TABLE (Decision VARCHAR) LANGUAGE SQL RETURN
            SELECT DP.Answer
            FROM TABLE (GetQuality(BuySuppComp.SupplierNo)) AS GQ,
                 TABLE (GetReliability(BuySuppComp.SupplierNo)) AS GR,
                 TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG,
                 TABLE (GetCompNo(BuySuppComp.CompName)) AS GCN,
                 TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP";
        let stmt = parse_statement(sql).unwrap();
        let Statement::CreateFunction(cf) = stmt else {
            panic!("expected create function")
        };
        assert_eq!(cf.name, Ident::new("BuySuppComp"));
        assert_eq!(cf.params.len(), 2);
        assert_eq!(cf.params[0].data_type, DataType::Int);
        assert_eq!(cf.returns.len(), 1);
        assert_eq!(cf.body.from.len(), 5);
        // Parameter references are qualified with the function name.
        let FromItem::TableFunction { args, .. } = &cf.body.from[0] else {
            panic!()
        };
        assert_eq!(args[0], Expr::col("BuySuppComp", "SupplierNo"));
    }

    #[test]
    fn parses_getnumbersupp1234_with_cast_function() {
        let sql = "CREATE FUNCTION GetNumberSupp1234 (CompNo INT)
            RETURNS TABLE (Number INT) LANGUAGE SQL RETURN
            SELECT BIGINT(GN.Number)
            FROM TABLE (GetNumber(1234, GetNumberSupp1234.CompNo)) AS GN";
        let Statement::CreateFunction(cf) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &cf.body.projection[0] else {
            panic!()
        };
        assert_eq!(
            expr,
            &Expr::Function {
                name: Ident::new("BIGINT"),
                args: vec![Expr::col("GN", "Number")]
            }
        );
    }

    #[test]
    fn parses_where_join_with_selection() {
        // The independent-case mapping: join with selection.
        let sql = "SELECT GSCD.SubCompNo, GCS4D.SupplierNo
            FROM TABLE (GetSubCompNo(1)) AS GSCD,
                 TABLE (GetCompSupp4Discount(10)) AS GCS4D
            WHERE GSCD.SubCompNo = GCS4D.CompNo";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let where_clause = sel.selection.unwrap();
        assert_eq!(
            where_clause,
            Expr::eq(Expr::col("GSCD", "SubCompNo"), Expr::col("GCS4D", "CompNo"))
        );
    }

    #[test]
    fn precedence_and_parentheses() {
        let e = parse_expression("a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter.
        let Expr::Binary { op, .. } = &e else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Or);
        let e2 = parse_expression("(a = 1 OR b = 2) AND c = 3").unwrap();
        let Expr::Binary { op, .. } = &e2 else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::And);
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::binary(
                Expr::lit(1),
                BinaryOp::Add,
                Expr::binary(Expr::lit(2), BinaryOp::Mul, Expr::lit(3))
            )
        );
    }

    #[test]
    fn is_null_and_not() {
        let e = parse_expression("x IS NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: false, .. }));
        let e = parse_expression("x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
        let e = parse_expression("NOT x = 1 AND y = 2").unwrap();
        // NOT applies to the comparison, not the conjunction.
        let Expr::Binary { op, left, .. } = &e else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::And);
        assert!(matches!(
            **left,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expression("-5").unwrap(), Expr::lit(-5));
        assert_eq!(parse_expression("-2.5").unwrap(), Expr::lit(-2.5));
        assert!(matches!(
            parse_expression("-x").unwrap(),
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn big_integer_literal_becomes_bigint() {
        let e = parse_expression("3000000000").unwrap();
        assert_eq!(e, Expr::Literal(Value::BigInt(3_000_000_000)));
    }

    #[test]
    fn cast_expression() {
        let e = parse_expression("CAST(x AS BIGINT)").unwrap();
        assert_eq!(
            e,
            Expr::Cast {
                expr: Box::new(Expr::bare("x")),
                data_type: DataType::BigInt
            }
        );
    }

    #[test]
    fn ddl_and_dml_statements() {
        let s =
            parse_statement("CREATE TABLE Suppliers (SupplierNo INT NOT NULL, Name VARCHAR(30))")
                .unwrap();
        let Statement::CreateTable { columns, .. } = s else {
            panic!()
        };
        assert!(columns[0].not_null);
        assert!(!columns[1].not_null);

        let s = parse_statement(
            "INSERT INTO Suppliers (SupplierNo, Name) VALUES (1, 'Acme'), (2, 'Bolt')",
        )
        .unwrap();
        let Statement::Insert { rows, columns, .. } = s else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(columns.unwrap().len(), 2);

        let s = parse_statement("UPDATE Suppliers SET Name = 'X' WHERE SupplierNo = 1").unwrap();
        assert!(matches!(s, Statement::Update { .. }));

        let s = parse_statement("DELETE FROM Suppliers WHERE SupplierNo = 2").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));

        let s = parse_statement("DROP FUNCTION BuySuppComp").unwrap();
        assert!(matches!(s, Statement::DropFunction { .. }));

        let s = parse_statement("CREATE UNIQUE INDEX pk ON Suppliers (SupplierNo)").unwrap();
        let Statement::CreateIndex { unique, .. } = s else {
            panic!()
        };
        assert!(unique);
    }

    #[test]
    fn order_by_and_limit() {
        let Statement::Select(sel) =
            parse_statement("SELECT a FROM t ORDER BY a DESC, b LIMIT 10").unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.order_by.len(), 2);
        assert!(!sel.order_by[0].ascending);
        assert!(sel.order_by[1].ascending);
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn group_by_and_aggregates_parse() {
        let Statement::Select(sel) =
            parse_statement("SELECT Relia, COUNT(*), SUM(Price) FROM t GROUP BY Relia, Name")
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.group_by.len(), 2);
        let SelectItem::Expr { expr, .. } = &sel.projection[1] else {
            panic!()
        };
        assert_eq!(
            expr,
            &Expr::Function {
                name: Ident::new("COUNT"),
                args: vec![]
            }
        );
        // Round trip preserves COUNT(*) spelling and the GROUP BY clause.
        let printed = Statement::Select(sel.clone()).to_string();
        assert!(printed.contains("COUNT(*)"), "{printed}");
        assert!(printed.contains("GROUP BY Relia, Name"), "{printed}");
        let reparsed = parse_statement(&printed).unwrap();
        assert_eq!(reparsed, Statement::Select(sel));
    }

    #[test]
    fn explain_parses_and_round_trips() {
        let stmt = parse_statement("EXPLAIN SELECT a FROM t WHERE a = 1").unwrap();
        let Statement::Explain(inner) = &stmt else {
            panic!()
        };
        assert!(matches!(**inner, Statement::Select(_)));
        assert_eq!(parse_statement(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn explain_analyze_parses_and_round_trips() {
        let stmt = parse_statement("EXPLAIN ANALYZE SELECT a FROM t WHERE a = 1").unwrap();
        let Statement::ExplainAnalyze(inner) = &stmt else {
            panic!()
        };
        assert!(matches!(**inner, Statement::Select(_)));
        assert_eq!(parse_statement(&stmt.to_string()).unwrap(), stmt);
        // `ANALYZE` alone is not a statement.
        assert!(parse_statement("ANALYZE SELECT a FROM t").is_err());
    }

    #[test]
    fn star_only_valid_in_count() {
        assert!(parse_statement("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn script_parsing() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_located() {
        let err = parse_statement("SELECT FROM t").unwrap_err();
        assert!(err.to_string().contains("expected"));
        let err = parse_statement("SELECT a FROM TABLE (f(1))").unwrap_err();
        // Missing the mandatory correlation name.
        assert!(err.to_string().contains("As") || err.to_string().contains("expected"));
    }

    #[test]
    fn bare_aliases_without_as() {
        let Statement::Select(sel) = parse_statement("SELECT a x FROM t u").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { alias, .. } = &sel.projection[0] else {
            panic!()
        };
        assert_eq!(alias.as_ref().unwrap(), &Ident::new("x"));
        let FromItem::Table { alias, .. } = &sel.from[0] else {
            panic!()
        };
        assert_eq!(alias.as_ref().unwrap(), &Ident::new("u"));
    }

    #[test]
    fn qualified_wildcard() {
        let Statement::Select(sel) = parse_statement("SELECT GQ.* FROM t AS GQ").unwrap() else {
            panic!()
        };
        assert_eq!(
            sel.projection[0],
            SelectItem::QualifiedWildcard(Ident::new("GQ"))
        );
    }

    #[test]
    fn varchar_length_is_accepted_and_ignored() {
        let Statement::CreateTable { columns, .. } =
            parse_statement("CREATE TABLE t (s VARCHAR(255))").unwrap()
        else {
            panic!()
        };
        assert_eq!(columns[0].data_type, DataType::Varchar);
    }
}
