//! The SQL lexer.

use std::fmt;

use fedwf_types::{FedError, FedResult};

/// Reserved words of the dialect. Everything else is an identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Select,
    From,
    Where,
    As,
    Table,
    Create,
    Function,
    Returns,
    Language,
    Sql,
    Return,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Drop,
    And,
    Or,
    Not,
    Null,
    Is,
    True,
    False,
    Cast,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Distinct,
    Unique,
    Index,
    On,
    Explain,
    Analyze,
    Group,
}

impl Keyword {
    pub fn parse(word: &str) -> Option<Keyword> {
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AS" => Keyword::As,
            "TABLE" => Keyword::Table,
            "CREATE" => Keyword::Create,
            "FUNCTION" => Keyword::Function,
            "RETURNS" => Keyword::Returns,
            "LANGUAGE" => Keyword::Language,
            "SQL" => Keyword::Sql,
            "RETURN" => Keyword::Return,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "UPDATE" => Keyword::Update,
            "SET" => Keyword::Set,
            "DELETE" => Keyword::Delete,
            "DROP" => Keyword::Drop,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "NULL" => Keyword::Null,
            "IS" => Keyword::Is,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "CAST" => Keyword::Cast,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "DISTINCT" => Keyword::Distinct,
            "UNIQUE" => Keyword::Unique,
            "INDEX" => Keyword::Index,
            "ON" => Keyword::On,
            "EXPLAIN" => Keyword::Explain,
            "ANALYZE" => Keyword::Analyze,
            "GROUP" => Keyword::Group,
            _ => return None,
        })
    }
}

/// Kinds of tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(Keyword),
    /// Unreserved identifier, original spelling preserved.
    Ident(String),
    /// Integer literal (fits i64).
    Integer(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal, quotes stripped, `''` unescaped.
    String(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||` string concatenation.
    Concat,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Integer(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::String(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Concat => write!(f, "||"),
        }
    }
}

/// A token plus its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// The lexer: consumes a source string, produces tokens.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> FedResult<Vec<Token>> {
        let mut tokens = Vec::new();
        while let Some(tok) = self.next_token()? {
            tokens.push(tok);
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> FedResult<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // `--` line comment.
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // `/* ... */` block comment.
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(FedError::parse(format!(
                                    "unterminated block comment at offset {start}"
                                )))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> FedResult<Option<Token>> {
        self.skip_trivia()?;
        let offset = self.pos;
        let b = match self.peek() {
            Some(b) => b,
            None => return Ok(None),
        };
        let kind = match b {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::LtEq
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(FedError::parse(format!(
                        "unexpected character '!' at offset {offset}"
                    )));
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::Concat
                } else {
                    return Err(FedError::parse(format!(
                        "unexpected character '|' at offset {offset}"
                    )));
                }
            }
            b'\'' => self.lex_string(offset)?,
            b'0'..=b'9' => self.lex_number(offset)?,
            b if b.is_ascii_alphabetic() || b == b'_' => self.lex_word(),
            other => {
                return Err(FedError::parse(format!(
                    "unexpected character {:?} at offset {offset}",
                    other as char
                )))
            }
        };
        Ok(Some(Token { kind, offset }))
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        match Keyword::parse(word) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(word.to_string()),
        }
    }

    fn lex_number(&mut self, offset: usize) -> FedResult<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        // A fractional part only when the dot is followed by a digit —
        // keeps `1.e` or alias-dots unambiguous.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut lookahead = self.pos + 1;
            if matches!(self.bytes.get(lookahead), Some(b'+') | Some(b'-')) {
                lookahead += 1;
            }
            if matches!(self.bytes.get(lookahead), Some(b'0'..=b'9')) {
                is_float = true;
                self.pos = lookahead;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| FedError::parse(format!("bad float literal at offset {offset}: {e}")))
        } else {
            text.parse::<i64>().map(TokenKind::Integer).map_err(|e| {
                FedError::parse(format!("bad integer literal at offset {offset}: {e}"))
            })
        }
    }

    fn lex_string(&mut self, offset: usize) -> FedResult<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        out.push('\'');
                    } else {
                        return Ok(TokenKind::String(out));
                    }
                }
                Some(b) => out.push(b as char),
                None => {
                    return Err(FedError::parse(format!(
                        "unterminated string literal at offset {offset}"
                    )))
                }
            }
        }
    }
}

/// Tokenize a source string.
pub fn tokenize(src: &str) -> FedResult<Vec<Token>> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_select_fragment() {
        let toks = kinds("SELECT DP.Answer FROM TABLE (GetQuality(SupplierNo)) AS GQ");
        assert_eq!(toks[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(toks[1], TokenKind::Ident("DP".into()));
        assert_eq!(toks[2], TokenKind::Dot);
        assert!(toks.contains(&TokenKind::Keyword(Keyword::Table)));
        assert!(toks.contains(&TokenKind::Ident("GetQuality".into())));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword(Keyword::Select));
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(kinds("42"), vec![TokenKind::Integer(42)]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Float(3.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("2.5E-1"), vec![TokenKind::Float(0.25)]);
    }

    #[test]
    fn dot_after_integer_is_not_float_when_no_digit() {
        // `1.` followed by an identifier (pathological but unambiguous).
        let toks = kinds("1 . x");
        assert_eq!(
            toks,
            vec![
                TokenKind::Integer(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into())
            ]
        );
    }

    #[test]
    fn strings_with_escaped_quotes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::String("it's".into())]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= || + - * /"),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Concat,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("SELECT -- the projection\n 1 /* one */ , 2");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Integer(1),
                TokenKind::Comma,
                TokenKind::Integer(2),
            ]
        );
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn offsets_point_at_tokens() {
        let toks = tokenize("SELECT  x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 8);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn underscore_identifiers() {
        assert_eq!(
            kinds("_tmp foo_bar"),
            vec![
                TokenKind::Ident("_tmp".into()),
                TokenKind::Ident("foo_bar".into())
            ]
        );
    }
}
