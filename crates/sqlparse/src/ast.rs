//! The abstract syntax tree and its SQL pretty-printer.

use std::fmt;

use fedwf_types::{DataType, Ident, QualifiedName, Value};

/// Binary operators, by increasing precedence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Concat,
}

impl BinaryOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Concat => "||",
        }
    }

    /// Binding power for the precedence-climbing parser/printer.
    pub fn precedence(&self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 5,
            BinaryOp::Mul | BinaryOp::Div => 6,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column or parameter reference (`GQ.Qual`, `BuySuppComp.SupplierNo`,
    /// bare `SupplierNo`).
    Column(QualifiedName),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Scalar function call, including cast functions like `BIGINT(x)`.
    Function { name: Ident, args: Vec<Expr> },
    /// `CAST(expr AS type)`.
    Cast {
        expr: Box<Expr>,
        data_type: DataType,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
}

impl Expr {
    pub fn col(qualifier: &str, name: &str) -> Expr {
        Expr::Column(QualifiedName::qualified(qualifier, name))
    }

    pub fn bare(name: &str) -> Expr {
        Expr::Column(QualifiedName::bare(name))
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Eq, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    /// All column references in the expression, in syntactic order.
    pub fn column_refs(&self) -> Vec<&QualifiedName> {
        let mut out = Vec::new();
        self.walk_columns(&mut |q| out.push(q));
        out
    }

    fn walk_columns<'a>(&'a self, f: &mut impl FnMut(&'a QualifiedName)) {
        match self {
            Expr::Column(q) => f(q),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.walk_columns(f);
                right.walk_columns(f);
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
                expr.walk_columns(f)
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk_columns(f);
                }
            }
        }
    }

    /// Split a conjunction into its conjuncts (`a AND b AND c` → `[a,b,c]`).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Rebuild a conjunction from conjuncts; `None` for an empty list.
    pub fn conjoin(exprs: Vec<Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Column(q) => write!(f, "{q}"),
            Expr::Literal(v) => match v {
                Value::Varchar(s) => write!(f, "'{}'", s.replace('\'', "''")),
                Value::Null => write!(f, "NULL"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                let needs_parens = prec < parent_prec;
                if needs_parens {
                    write!(f, "(")?;
                }
                left.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Right side binds one tighter for left-associative printing.
                right.fmt_prec(f, prec + 1)?;
                if needs_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => {
                    write!(f, "NOT ")?;
                    expr.fmt_prec(f, 3)
                }
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    expr.fmt_prec(f, 7)
                }
            },
            Expr::Function { name, args } => {
                // COUNT with no arguments is the COUNT(*) form.
                if args.is_empty() && name == &Ident::new("COUNT") {
                    return write!(f, "COUNT(*)");
                }
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::Cast { expr, data_type } => {
                write!(f, "CAST(")?;
                expr.fmt_prec(f, 0)?;
                write!(f, " AS {data_type})")
            }
            Expr::IsNull { expr, negated } => {
                expr.fmt_prec(f, 7)?;
                if *negated {
                    write!(f, " IS NOT NULL")
                } else {
                    write!(f, " IS NULL")
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// One item of a SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(Ident),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<Ident> },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// One item of a FROM clause. DB2 processes these **left to right**, and a
/// table function's arguments may reference correlation names introduced to
/// its left — the lateral semantics the paper leans on.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `name [AS alias]` — a base or federated table.
    Table { name: Ident, alias: Option<Ident> },
    /// `TABLE (func(args)) AS alias` — a user-defined table function with
    /// its mandatory correlation name.
    TableFunction {
        name: Ident,
        args: Vec<Expr>,
        alias: Ident,
    },
}

impl FromItem {
    /// The correlation name this item binds.
    pub fn binding(&self) -> &Ident {
        match self {
            FromItem::Table { name, alias } => alias.as_ref().unwrap_or(name),
            FromItem::TableFunction { alias, .. } => alias,
        }
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromItem::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            FromItem::TableFunction { name, args, alias } => {
                write!(f, "TABLE ({name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")) AS {alias}")
            }
        }
    }
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub ascending: bool,
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if !self.ascending {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<FromItem>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, item) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

/// A column definition in `CREATE TABLE` / `RETURNS TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: Ident,
    pub data_type: DataType,
    pub not_null: bool,
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)?;
        if self.not_null {
            write!(f, " NOT NULL")?;
        }
        Ok(())
    }
}

/// A parameter definition in `CREATE FUNCTION`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    pub name: Ident,
    pub data_type: DataType,
}

impl fmt::Display for ParamDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)
    }
}

/// `CREATE FUNCTION name (params) RETURNS TABLE (cols) LANGUAGE SQL RETURN
/// select` — the paper's SQL integration UDTF definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateFunctionStmt {
    pub name: Ident,
    pub params: Vec<ParamDef>,
    pub returns: Vec<ColumnDef>,
    pub body: SelectStmt,
}

impl fmt::Display for CreateFunctionStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE FUNCTION {} (", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") RETURNS TABLE (")?;
        for (i, c) in self.returns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ") LANGUAGE SQL RETURN {}", self.body)
    }
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    CreateTable {
        name: Ident,
        columns: Vec<ColumnDef>,
    },
    CreateFunction(CreateFunctionStmt),
    CreateIndex {
        name: Ident,
        table: Ident,
        column: Ident,
        unique: bool,
    },
    Insert {
        table: Ident,
        columns: Option<Vec<Ident>>,
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: Ident,
        assignments: Vec<(Ident, Expr)>,
        selection: Option<Expr>,
    },
    Delete {
        table: Ident,
        selection: Option<Expr>,
    },
    DropTable {
        name: Ident,
    },
    DropFunction {
        name: Ident,
    },
    /// `EXPLAIN <select>` — show the plan instead of executing it.
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE <select>` — execute the statement and show the
    /// plan annotated with per-operator actuals.
    ExplainAnalyze(Box<Statement>),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Statement::CreateFunction(c) => write!(f, "{c}"),
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            } => {
                write!(f, "CREATE ")?;
                if *unique {
                    write!(f, "UNIQUE ")?;
                }
                write!(f, "INDEX {name} ON {table} ({column})")
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " (")?;
                    for (i, c) in cols.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, " VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Update {
                table,
                assignments,
                selection,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(sel) = selection {
                    write!(f, " WHERE {sel}")?;
                }
                Ok(())
            }
            Statement::Delete { table, selection } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(sel) = selection {
                    write!(f, " WHERE {sel}")?;
                }
                Ok(())
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Statement::DropFunction { name } => write!(f, "DROP FUNCTION {name}"),
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
            Statement::ExplainAnalyze(inner) => write!(f, "EXPLAIN ANALYZE {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_respects_precedence() {
        // (a OR b) AND c must print its parentheses.
        let e = Expr::binary(
            Expr::binary(Expr::bare("a"), BinaryOp::Or, Expr::bare("b")),
            BinaryOp::And,
            Expr::bare("c"),
        );
        assert_eq!(e.to_string(), "(a OR b) AND c");
        // a OR b AND c needs none.
        let e2 = Expr::binary(
            Expr::bare("a"),
            BinaryOp::Or,
            Expr::binary(Expr::bare("b"), BinaryOp::And, Expr::bare("c")),
        );
        assert_eq!(e2.to_string(), "a OR b AND c");
    }

    #[test]
    fn right_associative_printing_parenthesizes() {
        // a - (b - c): the right operand of a left-assoc op needs parens.
        let e = Expr::binary(
            Expr::bare("a"),
            BinaryOp::Sub,
            Expr::binary(Expr::bare("b"), BinaryOp::Sub, Expr::bare("c")),
        );
        assert_eq!(e.to_string(), "a - (b - c)");
    }

    #[test]
    fn string_literals_escape_quotes() {
        let e = Expr::lit("it's");
        assert_eq!(e.to_string(), "'it''s'");
    }

    #[test]
    fn column_refs_in_order() {
        let e = Expr::eq(Expr::col("GQ", "Qual"), Expr::col("GR", "Relia"));
        let refs = e.column_refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].to_string(), "GQ.Qual");
    }

    #[test]
    fn conjuncts_split_and_rejoin() {
        let a = Expr::eq(Expr::bare("x"), Expr::lit(1));
        let b = Expr::eq(Expr::bare("y"), Expr::lit(2));
        let c = Expr::eq(Expr::bare("z"), Expr::lit(3));
        let all = Expr::and(Expr::and(a.clone(), b.clone()), c.clone());
        assert_eq!(all.conjuncts(), vec![&a, &b, &c]);
        let back = Expr::conjoin(vec![a, b, c]).unwrap();
        assert_eq!(back, all);
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn from_item_binding() {
        let t = FromItem::Table {
            name: Ident::new("Suppliers"),
            alias: Some(Ident::new("S")),
        };
        assert_eq!(t.binding(), &Ident::new("s"));
        let tf = FromItem::TableFunction {
            name: Ident::new("GetQuality"),
            args: vec![],
            alias: Ident::new("GQ"),
        };
        assert_eq!(tf.binding(), &Ident::new("gq"));
    }

    #[test]
    fn paper_statement_prints_back() {
        let stmt = SelectStmt {
            distinct: false,
            projection: vec![SelectItem::Expr {
                expr: Expr::col("DP", "Answer"),
                alias: None,
            }],
            from: vec![
                FromItem::TableFunction {
                    name: Ident::new("GetQuality"),
                    args: vec![Expr::bare("SupplierNo")],
                    alias: Ident::new("GQ"),
                },
                FromItem::TableFunction {
                    name: Ident::new("DecidePurchase"),
                    args: vec![Expr::col("GG", "Grade"), Expr::col("GCN", "No")],
                    alias: Ident::new("DP"),
                },
            ],
            selection: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        let sql = stmt.to_string();
        assert!(sql.contains("TABLE (GetQuality(SupplierNo)) AS GQ"));
        assert!(sql.contains("TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP"));
    }
}
