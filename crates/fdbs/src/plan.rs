//! Binder and planner: from AST to an executable lateral plan.
//!
//! The FROM clause compiles into a **left-to-right lateral chain**, exactly
//! DB2's processing model that the paper leans on: each step sees the
//! columns of every step to its *left* plus the enclosing function's
//! parameters (or the statement's host variables). A table function whose
//! arguments reference no lateral column is *independent* — when it is not
//! the first step, composing its result set with the prefix is the
//! "join with selection" whose cost distinguishes the UDTF architecture's
//! independent case from its sequential case.

use std::sync::Arc;

use fedwf_relstore::{CmpOp, Predicate};
use fedwf_sql::{BinaryOp, Expr, FromItem, SelectItem, SelectStmt, UnaryOp};
use fedwf_types::{Column, DataType, FedError, FedResult, Ident, QualifiedName, Schema, SchemaRef};

use crate::catalog::{Catalog, TableOrigin};
use crate::expr::{BoundExpr, ScalarFn};
use crate::sqlmed::ForeignServer;
use crate::udtf::Udtf;

/// One step of the lateral FROM chain.
#[derive(Clone)]
pub enum FromStep {
    /// Scan of a local table with a pushed-down storage predicate.
    ScanLocal {
        table: Ident,
        alias: Ident,
        schema: SchemaRef,
        pushdown: Predicate,
    },
    /// Scan of a foreign table; the predicate is pushed to the server as a
    /// subquery.
    ScanForeign {
        server: Arc<dyn ForeignServer>,
        remote_name: String,
        /// The catalog-local registration name — how the optimizer looks up
        /// ANALYZE statistics for this foreign table.
        catalog_name: Ident,
        alias: Ident,
        schema: SchemaRef,
        pushdown: Predicate,
    },
    /// Lateral table-function call.
    TableFunc {
        udtf: Arc<Udtf>,
        alias: Ident,
        args: Vec<BoundExpr>,
        /// True when no argument references a lateral column — composing
        /// with the prefix is then a join-with-selection.
        independent: bool,
    },
}

impl std::fmt::Debug for FromStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FromStep::ScanLocal { table, alias, .. } => write!(f, "ScanLocal({table} AS {alias})"),
            FromStep::ScanForeign {
                server,
                remote_name,
                alias,
                ..
            } => write!(f, "ScanForeign({}/{remote_name} AS {alias})", server.name()),
            FromStep::TableFunc {
                udtf,
                alias,
                independent,
                ..
            } => write!(
                f,
                "TableFunc({} AS {alias}{})",
                udtf.name,
                if *independent { ", independent" } else { "" }
            ),
        }
    }
}

impl FromStep {
    pub fn alias(&self) -> &Ident {
        match self {
            FromStep::ScanLocal { alias, .. }
            | FromStep::ScanForeign { alias, .. }
            | FromStep::TableFunc { alias, .. } => alias,
        }
    }

    pub fn schema(&self) -> SchemaRef {
        match self {
            FromStep::ScanLocal { schema, .. } | FromStep::ScanForeign { schema, .. } => {
                schema.clone()
            }
            FromStep::TableFunc { udtf, .. } => udtf.returns.clone(),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFn {
    pub fn resolve(name: &str) -> Option<AggFn> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFn::Count),
            "SUM" => Some(AggFn::Sum),
            "AVG" => Some(AggFn::Avg),
            "MIN" => Some(AggFn::Min),
            "MAX" => Some(AggFn::Max),
            _ => None,
        }
    }
}

/// One output column of an aggregate query.
#[derive(Debug, Clone)]
pub enum AggColumn {
    /// A grouping key (index into [`AggregatePlan::keys`]).
    Key(usize),
    /// An aggregate; `arg = None` is `COUNT(*)`.
    Agg { f: AggFn, arg: Option<BoundExpr> },
}

/// Grouping/aggregation stage appended after the lateral chain.
#[derive(Debug, Clone)]
pub struct AggregatePlan {
    pub keys: Vec<BoundExpr>,
    /// Output columns in projection order, with their names.
    pub columns: Vec<(AggColumn, Ident)>,
}

/// Equi-join conjuncts extracted at bind time for one lateral step: the
/// step's result rows join the prefix on `build[i] == probe[i]` for every
/// `i`. The executor uses them to build a hash table over the step's rows
/// instead of materializing the cross product.
#[derive(Debug, Clone)]
pub struct JoinKey {
    /// Probe-side expressions, evaluated against the prefix row layout plus
    /// parameters (they reference no column of the step itself).
    pub probe: Vec<BoundExpr>,
    /// Build-side column indexes, local to the step's own schema.
    pub build: Vec<usize>,
    /// The original conjuncts ANDed together, in prefix-layout indexes —
    /// what the naive reference path evaluates per composed row.
    pub residual: BoundExpr,
}

/// How the executor composes one step with the prefix — chosen by the
/// cost-based optimizer, honored by every executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Access {
    /// The executor's own syntactic heuristic: index probe whenever the
    /// step is indexable, hash join otherwise.
    #[default]
    Auto,
    /// Force the hash path even when an index probe would be available.
    Hash,
    /// Prefer the index probe. The executor still double-checks
    /// indexability at run time and falls back to the hash join when the
    /// index cannot serve the key.
    IndexProbe,
}

/// Optimizer cardinality estimates for one step of the lateral chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEstimate {
    /// Rows the step itself produces after its pushdown (for a table
    /// function: rows per invocation, from the declared fan-out).
    pub scan_rows: f64,
    /// Prefix rows after composing this step (join / cross / lateral).
    pub join_rows: f64,
    /// Prefix rows after this step's residual filter.
    pub out_rows: f64,
}

/// A bound, optimized, executable plan.
#[derive(Debug, Clone)]
pub struct Plan {
    pub steps: Vec<FromStep>,
    /// Residual filter applied right after step `i` completes (indexes into
    /// the concatenated prefix row layout).
    pub step_filters: Vec<Option<BoundExpr>>,
    /// Equi-join keys for step `i`, when its WHERE conjuncts contain
    /// hashable `prefix-expr = step-column` equalities.
    pub step_join_keys: Vec<Option<JoinKey>>,
    /// Projection pushed into step `i` by [`Plan::prune_projections`]:
    /// the step-local column indexes (sorted) the rest of the plan actually
    /// reads. `None` means the step's full schema is needed. When any step
    /// is pruned, every bound expression of the plan (filters, probe/residual
    /// expressions, projections, aggregate inputs, scalar sort keys, lateral
    /// function arguments) is rewritten into the pruned concatenated layout;
    /// only [`JoinKey::build`] and the storage pushdown predicates keep the
    /// original table-local numbering, because storage and index probes
    /// evaluate them *before* projecting.
    pub step_projections: Vec<Option<Vec<usize>>>,
    /// Per-step access-path choice. Executors read entries defensively
    /// (`.get(i)`), so a hand-built plan with an empty vector behaves as
    /// all-[`Access::Auto`].
    pub step_access: Vec<Access>,
    /// Per-step cardinality estimates. May be empty for hand-built plans;
    /// `EXPLAIN` and the q-error report treat missing entries as "no
    /// estimate".
    pub step_estimates: Vec<StepEstimate>,
    pub projection: Vec<(BoundExpr, Ident)>,
    /// `GROUP BY`/aggregate stage; when present, `projection` is unused.
    pub aggregate: Option<AggregatePlan>,
    pub distinct: bool,
    /// Sort keys. In scalar plans the expressions index the concatenated
    /// prefix layout (sort happens before projection); in aggregate plans
    /// they are `Column` references into the *output* row layout (sort
    /// happens after aggregation).
    pub order_by: Vec<(BoundExpr, bool)>,
    pub limit: Option<u64>,
    /// Declared parameter slots, in evaluation order.
    pub params: Vec<(Ident, DataType)>,
    pub out_schema: SchemaRef,
}

impl Plan {
    /// Push projections into the FROM steps: compute, per step, the set of
    /// columns the rest of the plan actually reads — output projection,
    /// aggregate keys and arguments, scalar ORDER BY inputs (sorting happens
    /// on the pre-projection layout), residual filters, join probe and
    /// residual expressions, hash-join build columns, and lateral function
    /// arguments — and rewrite every bound expression into the pruned
    /// concatenated layout. Scans then clone only the surviving columns.
    pub fn prune_projections(mut self) -> Plan {
        let widths: Vec<usize> = self.steps.iter().map(|s| s.schema().len()).collect();
        let offsets: Vec<usize> = widths
            .iter()
            .scan(0usize, |acc, w| {
                let o = *acc;
                *acc += w;
                Some(o)
            })
            .collect();
        let total: usize = widths.iter().sum();

        fn mark(needed: &mut [bool], e: &BoundExpr) {
            for c in e.column_indexes() {
                needed[c] = true;
            }
        }
        let mut needed = vec![false; total];
        for (e, _) in &self.projection {
            mark(&mut needed, e);
        }
        if let Some(agg) = &self.aggregate {
            for k in &agg.keys {
                mark(&mut needed, k);
            }
            for (col, _) in &agg.columns {
                if let AggColumn::Agg { arg: Some(a), .. } = col {
                    mark(&mut needed, a);
                }
            }
            // Aggregate ORDER BY indexes the *output* layout — not pruned.
        } else {
            for (e, _) in &self.order_by {
                mark(&mut needed, e);
            }
        }
        for f in self.step_filters.iter().flatten() {
            mark(&mut needed, f);
        }
        for (i, jk) in self.step_join_keys.iter().enumerate() {
            if let Some(jk) = jk {
                for p in &jk.probe {
                    mark(&mut needed, p);
                }
                mark(&mut needed, &jk.residual);
                for &b in &jk.build {
                    needed[offsets[i] + b] = true;
                }
            }
        }
        for step in &self.steps {
            if let FromStep::TableFunc { args, .. } = step {
                for a in args {
                    mark(&mut needed, a);
                }
            }
        }

        let mut step_projections: Vec<Option<Vec<usize>>> = Vec::with_capacity(self.steps.len());
        let mut any_pruned = false;
        for i in 0..self.steps.len() {
            let local: Vec<usize> = (0..widths[i]).filter(|&c| needed[offsets[i] + c]).collect();
            if local.len() == widths[i] {
                step_projections.push(None);
            } else {
                any_pruned = true;
                step_projections.push(Some(local));
            }
        }
        if !any_pruned {
            self.step_projections = step_projections;
            return self;
        }

        // New position of every surviving global column index.
        let mut remap = vec![usize::MAX; total];
        let mut next = 0usize;
        for i in 0..self.steps.len() {
            for c in 0..widths[i] {
                let keep = match &step_projections[i] {
                    None => true,
                    Some(proj) => proj.contains(&c),
                };
                if keep {
                    remap[offsets[i] + c] = next;
                    next += 1;
                }
            }
        }
        let remap_fn = |c: usize| remap[c];

        for (e, _) in self.projection.iter_mut() {
            *e = e.map_columns(&remap_fn);
        }
        if let Some(agg) = self.aggregate.as_mut() {
            for k in agg.keys.iter_mut() {
                *k = k.map_columns(&remap_fn);
            }
            for (col, _) in agg.columns.iter_mut() {
                if let AggColumn::Agg { arg: Some(a), .. } = col {
                    *a = a.map_columns(&remap_fn);
                }
            }
        } else {
            for (e, _) in self.order_by.iter_mut() {
                *e = e.map_columns(&remap_fn);
            }
        }
        for f in self.step_filters.iter_mut().flatten() {
            *f = f.map_columns(&remap_fn);
        }
        for jk in self.step_join_keys.iter_mut().flatten() {
            for p in jk.probe.iter_mut() {
                *p = p.map_columns(&remap_fn);
            }
            jk.residual = jk.residual.map_columns(&remap_fn);
        }
        for step in self.steps.iter_mut() {
            if let FromStep::TableFunc { args, .. } = step {
                for a in args.iter_mut() {
                    *a = a.map_columns(&remap_fn);
                }
            }
        }

        self.step_projections = step_projections;
        self
    }

    /// Render the plan as an indented text tree — the `EXPLAIN` output.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        if let Some(limit) = self.limit {
            out.push_str(&format!("Limit {limit}\n"));
        }
        if self.distinct {
            out.push_str("Distinct\n");
        }
        if !self.order_by.is_empty() {
            out.push_str(&format!(
                "Sort [{}]\n",
                self.order_by
                    .iter()
                    .map(|(e, asc)| format!("{e:?} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        match &self.aggregate {
            Some(agg) => out.push_str(&format!(
                "Aggregate [{} key(s); {}]\n",
                agg.keys.len(),
                agg.columns
                    .iter()
                    .map(|(_, name)| name.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
            None => out.push_str(&format!(
                "Project [{}]\n",
                self.projection
                    .iter()
                    .map(|(_, name)| name.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
        // Estimated rows for one step, or nothing when the plan carries no
        // estimates (hand-built plans). Part of the stable EXPLAIN grammar:
        // ` est=N` is always the final note on an operator line.
        let est_note = |i: usize, pick: fn(&StepEstimate) -> f64| -> String {
            match self.step_estimates.get(i) {
                Some(e) => format!(" est={:.0}", pick(e)),
                None => String::new(),
            }
        };
        for (i, step) in self.steps.iter().enumerate().rev() {
            let indent = "  ".repeat(self.steps.len() - i);
            if let Some(filter) = &self.step_filters[i] {
                out.push_str(&format!(
                    "{indent}Filter {filter:?}{}\n",
                    est_note(i, |e| e.out_rows)
                ));
            }
            if let Some(jk) = &self.step_join_keys[i] {
                out.push_str(&format!(
                    "{indent}HashJoin [{} key(s): {:?}]{}\n",
                    jk.build.len(),
                    jk.residual,
                    est_note(i, |e| e.join_rows)
                ));
            }
            // Cost-based access-path choice; `Auto` (the syntactic
            // heuristic) renders nothing, like `Predicate::True` pushdowns.
            let access_note = match self.step_access.get(i) {
                Some(Access::Hash) => " [access: hash]",
                Some(Access::IndexProbe) => " [access: index-probe]",
                _ => "",
            };
            // Pruned column list for the step, by name in the step's schema.
            let project_note = match self.step_projections.get(i).and_then(|p| p.as_ref()) {
                Some(proj) if proj.is_empty() => " [project: -]".to_string(),
                Some(proj) => {
                    let schema = step.schema();
                    format!(
                        " [project: {}]",
                        proj.iter()
                            .map(|&c| schema.columns()[c].name.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
                None => String::new(),
            };
            match step {
                FromStep::ScanLocal {
                    table,
                    alias,
                    pushdown,
                    ..
                } => {
                    out.push_str(&format!("{indent}ScanLocal {table} AS {alias}"));
                    if *pushdown != Predicate::True {
                        out.push_str(&format!(" [pushdown: {pushdown:?}]"));
                    }
                    out.push_str(&project_note);
                    out.push_str(access_note);
                    out.push_str(&est_note(i, |e| e.scan_rows));
                    out.push('\n');
                }
                FromStep::ScanForeign {
                    server,
                    remote_name,
                    alias,
                    pushdown,
                    ..
                } => {
                    out.push_str(&format!(
                        "{indent}ScanForeign {}/{remote_name} AS {alias}",
                        server.name()
                    ));
                    if *pushdown != Predicate::True {
                        out.push_str(&format!(" [pushdown: {pushdown:?}]"));
                    }
                    out.push_str(&project_note);
                    out.push_str(access_note);
                    out.push_str(&est_note(i, |e| e.scan_rows));
                    out.push('\n');
                }
                FromStep::TableFunc {
                    udtf,
                    alias,
                    independent,
                    args,
                } => {
                    out.push_str(&format!(
                        "{indent}TableFunction {}({} arg{}) AS {alias}{}{project_note}{}\n",
                        udtf.name,
                        args.len(),
                        if args.len() == 1 { "" } else { "s" },
                        if *independent && i > 0 {
                            " [independent: join with selection]"
                        } else if *independent {
                            " [uncorrelated]"
                        } else {
                            " [lateral]"
                        },
                        est_note(i, |e| e.join_rows)
                    ));
                }
            }
        }
        out
    }
}

/// The output of the binder before the optimizer runs: FROM steps in
/// syntactic order with no pushdowns applied, WHERE conjuncts bound against
/// the syntactic concatenated layout but not yet placed, and the bound
/// output stages. [`crate::optimizer::optimize`] turns this into an
/// executable [`Plan`] — placing conjuncts (pushdown / join-key extraction /
/// residual filters), optionally reordering steps, estimating cardinalities
/// and choosing access paths.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    pub steps: Vec<FromStep>,
    /// Bound WHERE conjuncts in statement order, over the syntactic
    /// concatenated layout.
    pub conjuncts: Vec<BoundExpr>,
    pub projection: Vec<(BoundExpr, Ident)>,
    pub aggregate: Option<AggregatePlan>,
    pub distinct: bool,
    pub order_by: Vec<(BoundExpr, bool)>,
    pub limit: Option<u64>,
    pub params: Vec<(Ident, DataType)>,
    pub out_schema: SchemaRef,
}

/// Binder for SELECT statements.
pub struct PlanBuilder<'a> {
    catalog: &'a Catalog,
    /// Enclosing `CREATE FUNCTION` name (parameter qualifier), if any.
    function_name: Option<Ident>,
    /// Parameter slots: function parameters or host variables.
    params: Vec<(Ident, DataType)>,
}

struct Scope {
    /// (alias, schema, column offset in the concatenated layout)
    entries: Vec<(Ident, SchemaRef, usize)>,
    width: usize,
}

impl Scope {
    fn new() -> Scope {
        Scope {
            entries: vec![],
            width: 0,
        }
    }

    fn push(&mut self, alias: Ident, schema: SchemaRef) -> FedResult<()> {
        if self.entries.iter().any(|(a, _, _)| a == &alias) {
            return Err(FedError::bind(format!(
                "duplicate correlation name {alias}"
            )));
        }
        let w = schema.len();
        self.entries.push((alias, schema, self.width));
        self.width += w;
        Ok(())
    }

    /// Resolve `alias.column` to (index, type).
    fn resolve_qualified(&self, alias: &Ident, column: &Ident) -> Option<(usize, DataType)> {
        let (_, schema, offset) = self.entries.iter().find(|(a, _, _)| a == alias)?;
        let idx = schema.index_of(column)?;
        Some((offset + idx, schema.columns()[idx].data_type))
    }

    /// Resolve a bare column name; Err on ambiguity, None when absent.
    fn resolve_bare(&self, column: &Ident) -> FedResult<Option<(usize, DataType)>> {
        let mut found = None;
        for (_, schema, offset) in &self.entries {
            if let Some(idx) = schema.index_of(column) {
                if found.is_some() {
                    return Err(FedError::bind(format!(
                        "ambiguous column reference {column}"
                    )));
                }
                found = Some((offset + idx, schema.columns()[idx].data_type));
            }
        }
        Ok(found)
    }
}

impl<'a> PlanBuilder<'a> {
    pub fn new(catalog: &'a Catalog) -> PlanBuilder<'a> {
        PlanBuilder {
            catalog,
            function_name: None,
            params: vec![],
        }
    }

    /// Bind inside a `CREATE FUNCTION` body: parameters are addressable as
    /// `FunctionName.Param` or bare.
    pub fn with_function_context(
        mut self,
        name: impl Into<Ident>,
        params: Vec<(Ident, DataType)>,
    ) -> Self {
        self.function_name = Some(name.into());
        self.params = params;
        self
    }

    /// Bind a top-level statement with host variables (the application
    /// variables of embedded SQL, e.g. `SupplierNo` in the paper's simple
    /// UDTF statement).
    pub fn with_host_params(mut self, params: Vec<(Ident, DataType)>) -> Self {
        self.params = params;
        self
    }

    /// Bind a standalone value expression (INSERT/UPDATE literals): no
    /// columns in scope, only constants, parameters and scalar functions.
    pub fn bind_value_expr(&self, expr: &Expr) -> FedResult<BoundExpr> {
        Ok(fold(self.bind_expr(expr, &Scope::new())?))
    }

    /// Bind and optimize with the syntactic planner — today's plans,
    /// byte-for-byte. Callers that want cost-based planning go through
    /// [`PlanBuilder::bind_logical`] + [`crate::optimizer::optimize`].
    pub fn bind(&self, stmt: &SelectStmt) -> FedResult<Plan> {
        let logical = self.bind_logical(stmt)?;
        crate::optimizer::optimize(
            self.catalog,
            logical,
            crate::optimizer::PlannerMode::Syntactic,
        )
    }

    /// Bind a SELECT into a [`LogicalPlan`]: resolve names, bind and fold
    /// every expression, detect lateral (in)dependence — but place no
    /// conjunct and choose no access path. That is the optimizer's job.
    pub fn bind_logical(&self, stmt: &SelectStmt) -> FedResult<LogicalPlan> {
        let mut scope = Scope::new();
        let mut steps = Vec::with_capacity(stmt.from.len());

        for item in &stmt.from {
            let step = self.bind_from_item(item, &scope)?;
            scope.push(step.alias().clone(), step.schema())?;
            steps.push(step);
        }

        if stmt.selection.is_some() && steps.is_empty() {
            return Err(FedError::bind("WHERE clause without FROM clause"));
        }
        let mut conjuncts: Vec<BoundExpr> = Vec::new();
        if let Some(selection) = &stmt.selection {
            for conjunct in selection.conjuncts() {
                conjuncts.push(fold(self.bind_expr(conjunct, &scope)?));
            }
        }

        // Aggregate queries take a separate projection path.
        let has_agg = !stmt.group_by.is_empty()
            || stmt.projection.iter().any(|item| {
                matches!(
                    item,
                    SelectItem::Expr {
                        expr: Expr::Function { name, .. },
                        ..
                    } if AggFn::resolve(name.as_str()).is_some()
                )
            });
        if has_agg {
            return self.bind_aggregate(stmt, &scope, steps, conjuncts);
        }

        // Projection.
        let mut projection: Vec<(BoundExpr, Ident)> = Vec::new();
        for item in &stmt.projection {
            match item {
                SelectItem::Wildcard => {
                    for (alias, schema, offset) in &scope.entries {
                        let _ = alias;
                        for (i, col) in schema.columns().iter().enumerate() {
                            projection.push((
                                BoundExpr::Column {
                                    index: offset + i,
                                    data_type: col.data_type,
                                },
                                col.name.clone(),
                            ));
                        }
                    }
                    if scope.entries.is_empty() {
                        return Err(FedError::bind("SELECT * without FROM clause"));
                    }
                }
                SelectItem::QualifiedWildcard(alias) => {
                    let entry = scope
                        .entries
                        .iter()
                        .find(|(a, _, _)| a == alias)
                        .ok_or_else(|| {
                            FedError::bind(format!("unknown correlation name {alias}"))
                        })?;
                    for (i, col) in entry.1.columns().iter().enumerate() {
                        projection.push((
                            BoundExpr::Column {
                                index: entry.2 + i,
                                data_type: col.data_type,
                            },
                            col.name.clone(),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = fold(self.bind_expr(expr, &scope)?);
                    let name = alias
                        .clone()
                        .unwrap_or_else(|| derive_name(expr, projection.len()));
                    projection.push((bound, name));
                }
            }
        }

        let order_by = stmt
            .order_by
            .iter()
            .map(|o| Ok((fold(self.bind_expr(&o.expr, &scope)?), o.ascending)))
            .collect::<FedResult<Vec<_>>>()?;

        let out_schema = Arc::new(Schema::new(
            projection
                .iter()
                .map(|(e, name)| {
                    Column::new(name.clone(), e.data_type().unwrap_or(DataType::Varchar))
                })
                .collect(),
        ));

        Ok(LogicalPlan {
            steps,
            conjuncts,
            projection,
            aggregate: None,
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit,
            params: self.params.clone(),
            out_schema,
        })
    }

    /// Bind a SELECT with aggregates and/or GROUP BY.
    fn bind_aggregate(
        &self,
        stmt: &SelectStmt,
        scope: &Scope,
        steps: Vec<FromStep>,
        conjuncts: Vec<BoundExpr>,
    ) -> FedResult<LogicalPlan> {
        let keys: Vec<BoundExpr> = stmt
            .group_by
            .iter()
            .map(|e| Ok(fold(self.bind_expr(e, scope)?)))
            .collect::<FedResult<_>>()?;

        let mut columns: Vec<(AggColumn, Ident)> = Vec::new();
        for (pos, item) in stmt.projection.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(FedError::bind(
                    "wildcards cannot appear in an aggregate projection",
                ));
            };
            let name = alias.clone().unwrap_or_else(|| derive_name(expr, pos));
            // A top-level aggregate call?
            if let Expr::Function { name: fname, args } = expr {
                if let Some(f) = AggFn::resolve(fname.as_str()) {
                    let arg = match (f, args.len()) {
                        (AggFn::Count, 0) => None, // COUNT(*)
                        (_, 1) => {
                            let bound = fold(self.bind_expr(&args[0], scope)?);
                            if f != AggFn::Count && f != AggFn::Min && f != AggFn::Max {
                                let dt = bound.data_type();
                                if !dt.map(|d| d.is_numeric()).unwrap_or(true) {
                                    return Err(FedError::bind(format!(
                                        "{fname} requires a numeric argument"
                                    )));
                                }
                            }
                            Some(bound)
                        }
                        _ => {
                            return Err(FedError::bind(format!(
                                "{fname} expects exactly one argument"
                            )))
                        }
                    };
                    columns.push((AggColumn::Agg { f, arg }, name));
                    continue;
                }
            }
            // Otherwise the expression must be one of the grouping keys.
            let key_pos = stmt
                .group_by
                .iter()
                .position(|k| k == expr)
                .ok_or_else(|| {
                    FedError::bind(format!(
                        "projection {expr} is neither an aggregate nor listed in GROUP BY"
                    ))
                })?;
            columns.push((AggColumn::Key(key_pos), name));
        }

        let out_schema = Arc::new(Schema::new(
            columns
                .iter()
                .map(|(col, name)| {
                    let dt = match col {
                        AggColumn::Key(i) => keys[*i].data_type().unwrap_or(DataType::Varchar),
                        AggColumn::Agg { f, arg } => match f {
                            AggFn::Count => DataType::BigInt,
                            AggFn::Avg => DataType::Double,
                            AggFn::Sum => match arg.as_ref().and_then(|a| a.data_type()) {
                                Some(DataType::Double) => DataType::Double,
                                _ => DataType::BigInt,
                            },
                            AggFn::Min | AggFn::Max => arg
                                .as_ref()
                                .and_then(|a| a.data_type())
                                .unwrap_or(DataType::Varchar),
                        },
                    };
                    Column::new(name.clone(), dt)
                })
                .collect(),
        ));

        // ORDER BY over an aggregate sorts the aggregate *output*: each sort
        // key must resolve to an output column — by ordinal (`ORDER BY 2`),
        // by output name/alias, or by repeating a projected expression
        // (`ORDER BY COUNT(*)`).
        let mut order_by: Vec<(BoundExpr, bool)> = Vec::new();
        for o in &stmt.order_by {
            let pos = match &o.expr {
                Expr::Literal(v) => {
                    let ordinal = v.as_i64().ok_or_else(|| {
                        FedError::bind(format!("ORDER BY position must be an integer, got {v}"))
                    })?;
                    if ordinal < 1 || ordinal as usize > columns.len() {
                        return Err(FedError::bind(format!(
                            "ORDER BY position {ordinal} is out of range (1..={})",
                            columns.len()
                        )));
                    }
                    ordinal as usize - 1
                }
                expr => stmt
                    .projection
                    .iter()
                    .position(|item| matches!(item, SelectItem::Expr { expr: e, .. } if e == expr))
                    .or_else(|| match expr {
                        Expr::Column(q) if q.qualifier.is_none() => {
                            columns.iter().position(|(_, name)| *name == q.name)
                        }
                        _ => None,
                    })
                    .ok_or_else(|| {
                        FedError::bind(format!(
                            "ORDER BY {expr} must reference an output column of the aggregate \
                             (by name, ordinal, or by repeating the projected expression)"
                        ))
                    })?,
            };
            order_by.push((
                BoundExpr::Column {
                    index: pos,
                    data_type: out_schema.columns()[pos].data_type,
                },
                o.ascending,
            ));
        }

        Ok(LogicalPlan {
            steps,
            conjuncts,
            projection: vec![],
            aggregate: Some(AggregatePlan { keys, columns }),
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit,
            params: self.params.clone(),
            out_schema,
        })
    }

    fn bind_from_item(&self, item: &FromItem, scope: &Scope) -> FedResult<FromStep> {
        match item {
            FromItem::Table { name, alias } => {
                let (origin, schema) = self.catalog.resolve_table(name)?;
                let alias = alias.clone().unwrap_or_else(|| name.clone());
                Ok(match origin {
                    TableOrigin::Local => FromStep::ScanLocal {
                        table: name.clone(),
                        alias,
                        schema,
                        pushdown: Predicate::True,
                    },
                    TableOrigin::Foreign {
                        server,
                        remote_name,
                    } => FromStep::ScanForeign {
                        server,
                        remote_name,
                        catalog_name: name.clone(),
                        alias,
                        schema,
                        pushdown: Predicate::True,
                    },
                })
            }
            FromItem::TableFunction { name, args, alias } => {
                let udtf = self.catalog.udtf(name)?;
                if args.len() != udtf.params.len() {
                    return Err(FedError::bind(format!(
                        "function {} expects {} arguments, got {}",
                        udtf.name,
                        udtf.params.len(),
                        args.len()
                    )));
                }
                let bound_args: Vec<BoundExpr> = args
                    .iter()
                    .map(|a| Ok(fold(self.bind_expr(a, scope)?)))
                    .collect::<FedResult<_>>()?;
                let independent = bound_args.iter().all(|a| a.column_indexes().is_empty());
                Ok(FromStep::TableFunc {
                    udtf,
                    alias: alias.clone(),
                    args: bound_args,
                    independent,
                })
            }
        }
    }

    fn bind_expr(&self, expr: &Expr, scope: &Scope) -> FedResult<BoundExpr> {
        match expr {
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Column(q) => self.bind_column(q, scope),
            Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
                left: Box::new(self.bind_expr(left, scope)?),
                op: *op,
                right: Box::new(self.bind_expr(right, scope)?),
            }),
            Expr::Unary { op, expr } => {
                let inner = Box::new(self.bind_expr(expr, scope)?);
                Ok(match op {
                    UnaryOp::Not => BoundExpr::Not(inner),
                    UnaryOp::Neg => BoundExpr::Neg(inner),
                })
            }
            Expr::Cast { expr, data_type } => Ok(BoundExpr::Cast {
                input: Box::new(self.bind_expr(expr, scope)?),
                to: *data_type,
            }),
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                input: Box::new(self.bind_expr(expr, scope)?),
                negated: *negated,
            }),
            Expr::Function { name, args } => {
                // Cast functions: BIGINT(x), INT(x), VARCHAR(x), ...
                if let Some(dt) = DataType::parse(name.as_str()) {
                    if args.len() != 1 {
                        return Err(FedError::bind(format!(
                            "cast function {name} expects exactly one argument"
                        )));
                    }
                    return Ok(BoundExpr::Cast {
                        input: Box::new(self.bind_expr(&args[0], scope)?),
                        to: dt,
                    });
                }
                if let Some(f) = ScalarFn::resolve(name.as_str()) {
                    let bound: Vec<BoundExpr> = args
                        .iter()
                        .map(|a| self.bind_expr(a, scope))
                        .collect::<FedResult<_>>()?;
                    if bound.len() != 1 {
                        return Err(FedError::bind(format!(
                            "scalar function {name} expects exactly one argument"
                        )));
                    }
                    return Ok(BoundExpr::Scalar { f, args: bound });
                }
                if self.catalog.has_udtf(name) {
                    return Err(FedError::bind(format!(
                        "table function {name} cannot be nested in a scalar expression — reference it in the FROM clause (nesting of functions is not supported)"
                    )));
                }
                Err(FedError::bind(format!("unknown scalar function {name}")))
            }
        }
    }

    fn bind_column(&self, q: &QualifiedName, scope: &Scope) -> FedResult<BoundExpr> {
        if let Some(qualifier) = &q.qualifier {
            // Correlation name wins over the function-name qualifier.
            if let Some((index, data_type)) = scope.resolve_qualified(qualifier, &q.name) {
                return Ok(BoundExpr::Column { index, data_type });
            }
            if Some(qualifier) == self.function_name.as_ref() {
                if let Some(slot) = self.param_slot(&q.name) {
                    return Ok(slot);
                }
                return Err(FedError::bind(format!(
                    "function {qualifier} has no parameter {}",
                    q.name
                )));
            }
            return Err(FedError::bind(format!(
                "unknown correlation name {qualifier} in reference {q}"
            )));
        }
        if let Some((index, data_type)) = scope.resolve_bare(&q.name)? {
            return Ok(BoundExpr::Column { index, data_type });
        }
        if let Some(slot) = self.param_slot(&q.name) {
            return Ok(slot);
        }
        Err(FedError::bind(format!("unresolved column reference {q}")))
    }

    fn param_slot(&self, name: &Ident) -> Option<BoundExpr> {
        self.params
            .iter()
            .position(|(n, _)| n == name)
            .map(|index| BoundExpr::Param {
                index,
                data_type: self.params[index].1,
            })
    }
}

/// Concatenated-layout offset of each step's first column.
pub(crate) fn step_offsets(steps: &[FromStep]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(steps.len());
    let mut acc = 0usize;
    for step in steps {
        offsets.push(acc);
        acc += step.schema().len();
    }
    offsets
}

/// Place one bound WHERE conjunct into an executable plan: push into a
/// scan's storage predicate when it touches exactly one scan step and has a
/// pushable shape; failing that, extract it as a hash-join key when it is an
/// equality between a column of the target step and a prefix-only
/// expression; otherwise attach it as a residual filter at the earliest step
/// where all its columns exist. `offsets` is the concatenated layout the
/// conjunct's column indexes refer to ([`step_offsets`] of `steps`) — the
/// optimizer calls this after permuting the steps and remapping the
/// conjunct into the permuted layout.
pub(crate) fn place_bound_conjunct(
    bound: BoundExpr,
    steps: &mut [FromStep],
    offsets: &[usize],
    step_filters: &mut [Option<BoundExpr>],
    step_join_keys: &mut [Option<JoinKey>],
) {
    let cols = bound.column_indexes();
    // Earliest step whose prefix covers all referenced columns.
    let mut target = 0usize;
    for &c in &cols {
        let step_of_col = steps
            .iter()
            .enumerate()
            .position(|(i, step)| c >= offsets[i] && c < offsets[i] + step.schema().len())
            .expect("bound column belongs to a step");
        target = target.max(step_of_col);
    }

    // Try full pushdown into a scan when every column belongs to the
    // target step itself and the shape converts.
    let (t_offset, t_len) = (offsets[target], steps[target].schema().len());
    let local_only = cols.iter().all(|&c| c >= t_offset && c < t_offset + t_len);
    if local_only {
        if let Some(pred) = to_storage_predicate(&bound, t_offset) {
            match &mut steps[target] {
                FromStep::ScanLocal { pushdown, .. } | FromStep::ScanForeign { pushdown, .. } => {
                    *pushdown = std::mem::replace(pushdown, Predicate::True).and(pred);
                    return;
                }
                FromStep::TableFunc { .. } => {}
            }
        }
    }

    // Equi-join extraction: `step-column = prefix-expr` (either
    // orientation) turns the step composition into a hash join. Not for
    // dependent table functions — their results are already correlated
    // per prefix row, so the conjunct stays a residual filter.
    let extractable_step = matches!(
        steps[target],
        FromStep::ScanLocal { .. }
            | FromStep::ScanForeign { .. }
            | FromStep::TableFunc {
                independent: true,
                ..
            }
    );
    if extractable_step {
        if let Some((build, probe)) = split_equi_join(&bound, t_offset, t_len) {
            // Static type gate: the hash path compares by key equality
            // and can never raise `sql_cmp`'s "cannot compare" error, so
            // only extract when bind-time types guarantee comparability.
            let comparable = match (
                steps[target].schema().columns()[build].data_type,
                probe.data_type(),
            ) {
                (b, Some(p)) => b == p || (b.is_numeric() && p.is_numeric()),
                (_, None) => false,
            };
            if comparable {
                match &mut step_join_keys[target] {
                    Some(jk) => {
                        jk.build.push(build);
                        jk.probe.push(probe);
                        jk.residual = BoundExpr::Binary {
                            left: Box::new(jk.residual.clone()),
                            op: BinaryOp::And,
                            right: Box::new(bound),
                        };
                    }
                    slot @ None => {
                        *slot = Some(JoinKey {
                            probe: vec![probe],
                            build: vec![build],
                            residual: bound,
                        });
                    }
                }
                return;
            }
        }
    }

    step_filters[target] = Some(match step_filters[target].take() {
        Some(existing) => BoundExpr::Binary {
            left: Box::new(existing),
            op: BinaryOp::And,
            right: Box::new(bound),
        },
        None => bound,
    });
}

/// Constant folding: collapse literal-only subtrees.
pub fn fold(expr: BoundExpr) -> BoundExpr {
    fn is_literal(e: &BoundExpr) -> bool {
        matches!(e, BoundExpr::Literal(_))
    }
    let rebuilt = match expr {
        BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(fold(*left)),
            op,
            right: Box::new(fold(*right)),
        },
        BoundExpr::Not(e) => BoundExpr::Not(Box::new(fold(*e))),
        BoundExpr::Neg(e) => BoundExpr::Neg(Box::new(fold(*e))),
        BoundExpr::Cast { input, to } => BoundExpr::Cast {
            input: Box::new(fold(*input)),
            to,
        },
        BoundExpr::IsNull { input, negated } => BoundExpr::IsNull {
            input: Box::new(fold(*input)),
            negated,
        },
        BoundExpr::Scalar { f, args } => BoundExpr::Scalar {
            f,
            args: args.into_iter().map(fold).collect(),
        },
        other => other,
    };
    let all_literal = match &rebuilt {
        BoundExpr::Binary { left, right, .. } => is_literal(left) && is_literal(right),
        BoundExpr::Not(e) | BoundExpr::Neg(e) => is_literal(e),
        BoundExpr::Cast { input, .. } | BoundExpr::IsNull { input, .. } => is_literal(input),
        BoundExpr::Scalar { args, .. } => args.iter().all(is_literal),
        _ => false,
    };
    if all_literal {
        if let Ok(v) = rebuilt.eval(&[], &[]) {
            return BoundExpr::Literal(v);
        }
    }
    rebuilt
}

/// If `expr` is `target-step-column = prefix-only-expr` (either
/// orientation), return the build column index (local to the step's schema)
/// and the probe expression. The probe side may reference literals,
/// parameters, and columns strictly left of the target step, but none of
/// the target step's own columns.
fn split_equi_join(expr: &BoundExpr, t_offset: usize, t_len: usize) -> Option<(usize, BoundExpr)> {
    let BoundExpr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = expr
    else {
        return None;
    };
    let in_step = |i: usize| i >= t_offset && i < t_offset + t_len;
    let prefix_only = |e: &BoundExpr| e.column_indexes().iter().all(|&c| c < t_offset);
    match (&**left, &**right) {
        (BoundExpr::Column { index, .. }, probe) if in_step(*index) && prefix_only(probe) => {
            Some((index - t_offset, probe.clone()))
        }
        (probe, BoundExpr::Column { index, .. }) if in_step(*index) && prefix_only(probe) => {
            Some((index - t_offset, probe.clone()))
        }
        _ => None,
    }
}

/// Convert a bound predicate over one table's columns into a storage
/// predicate, shifting indexes by `offset`. Returns `None` for shapes the
/// storage layer cannot evaluate (params, arithmetic, cross-column).
fn to_storage_predicate(expr: &BoundExpr, offset: usize) -> Option<Predicate> {
    match expr {
        BoundExpr::Binary { left, op, right } => match op {
            BinaryOp::And => {
                Some(to_storage_predicate(left, offset)?.and(to_storage_predicate(right, offset)?))
            }
            BinaryOp::Or => {
                Some(to_storage_predicate(left, offset)?.or(to_storage_predicate(right, offset)?))
            }
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => {
                let cmp_op = match op {
                    BinaryOp::Eq => CmpOp::Eq,
                    BinaryOp::NotEq => CmpOp::NotEq,
                    BinaryOp::Lt => CmpOp::Lt,
                    BinaryOp::LtEq => CmpOp::LtEq,
                    BinaryOp::Gt => CmpOp::Gt,
                    BinaryOp::GtEq => CmpOp::GtEq,
                    _ => unreachable!(),
                };
                match (&**left, &**right) {
                    (BoundExpr::Column { index, .. }, BoundExpr::Literal(v)) => {
                        Some(Predicate::cmp(index - offset, cmp_op, v.clone()))
                    }
                    (BoundExpr::Literal(v), BoundExpr::Column { index, .. }) => {
                        let flipped = match cmp_op {
                            CmpOp::Lt => CmpOp::Gt,
                            CmpOp::LtEq => CmpOp::GtEq,
                            CmpOp::Gt => CmpOp::Lt,
                            CmpOp::GtEq => CmpOp::LtEq,
                            other => other,
                        };
                        Some(Predicate::cmp(index - offset, flipped, v.clone()))
                    }
                    _ => None,
                }
            }
            _ => None,
        },
        BoundExpr::Not(e) => Some(to_storage_predicate(e, offset)?.negate()),
        BoundExpr::IsNull { input, negated } => match &**input {
            BoundExpr::Column { index, .. } => Some(if *negated {
                Predicate::IsNotNull(index - offset)
            } else {
                Predicate::IsNull(index - offset)
            }),
            _ => None,
        },
        _ => None,
    }
}

fn derive_name(expr: &Expr, position: usize) -> Ident {
    match expr {
        Expr::Column(q) => q.name.clone(),
        Expr::Function { name, .. } => name.clone(),
        Expr::Cast { expr, .. } => derive_name(expr, position),
        _ => Ident::new(format!("C{}", position + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udtf::Udtf;
    use fedwf_sql::parse_statement;
    use fedwf_sql::Statement;
    use fedwf_types::{Row, Table, Value};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.local()
            .create_table(
                "Suppliers",
                Arc::new(Schema::of(&[
                    ("SupplierNo", DataType::Int),
                    ("Name", DataType::Varchar),
                ])),
            )
            .unwrap();
        cat.local()
            .insert(
                "Suppliers",
                Row::new(vec![Value::Int(1), Value::str("Acme")]),
            )
            .unwrap();
        cat.register_udtf(Udtf::native(
            "GetQuality",
            vec![(Ident::new("SupplierNo"), DataType::Int)],
            Arc::new(Schema::of(&[("Qual", DataType::Int)])),
            |_args, _m| Ok(Table::scalar("Qual", Value::Int(93))),
        ))
        .unwrap();
        cat.register_udtf(Udtf::native(
            "GetReliability",
            vec![(Ident::new("SupplierNo"), DataType::Int)],
            Arc::new(Schema::of(&[("Relia", DataType::Int)])),
            |_args, _m| Ok(Table::scalar("Relia", Value::Int(87))),
        ))
        .unwrap();
        cat
    }

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn binds_lateral_table_functions() {
        let cat = catalog();
        let stmt =
            select("SELECT GQ.Qual FROM Suppliers AS S, TABLE (GetQuality(S.SupplierNo)) AS GQ");
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert_eq!(plan.steps.len(), 2);
        let FromStep::TableFunc {
            args, independent, ..
        } = &plan.steps[1]
        else {
            panic!()
        };
        assert!(!independent, "args reference a lateral column");
        assert_eq!(args.len(), 1);
        assert_eq!(plan.out_schema.columns()[0].name, Ident::new("Qual"));
    }

    #[test]
    fn forward_reference_is_rejected() {
        // DB2's left-to-right rule: GQ cannot reference GR defined later.
        let cat = catalog();
        let stmt = select(
            "SELECT 1 FROM TABLE (GetQuality(GR.Relia)) AS GQ, TABLE (GetReliability(1)) AS GR",
        );
        let err = PlanBuilder::new(&cat).bind(&stmt).unwrap_err();
        assert!(err.to_string().contains("GR") || err.to_string().contains("unknown"));
    }

    #[test]
    fn independence_detected_for_literal_args() {
        let cat = catalog();
        let stmt = select(
            "SELECT GQ.Qual, GR.Relia FROM TABLE (GetQuality(7)) AS GQ, TABLE (GetReliability(7)) AS GR",
        );
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        for step in &plan.steps {
            let FromStep::TableFunc { independent, .. } = step else {
                panic!()
            };
            assert!(independent);
        }
    }

    #[test]
    fn function_context_params_resolve() {
        let cat = catalog();
        let stmt = select("SELECT GQ.Qual FROM TABLE (GetQuality(GetSuppQual.SupplierNo)) AS GQ");
        let plan = PlanBuilder::new(&cat)
            .with_function_context(
                "GetSuppQual",
                vec![(Ident::new("SupplierNo"), DataType::Int)],
            )
            .bind(&stmt)
            .unwrap();
        let FromStep::TableFunc { args, .. } = &plan.steps[0] else {
            panic!()
        };
        assert_eq!(
            args[0],
            BoundExpr::Param {
                index: 0,
                data_type: DataType::Int
            }
        );
    }

    #[test]
    fn host_variables_resolve_bare_names() {
        let cat = catalog();
        let stmt = select("SELECT GQ.Qual FROM TABLE (GetQuality(SupplierNo)) AS GQ");
        let plan = PlanBuilder::new(&cat)
            .with_host_params(vec![(Ident::new("SupplierNo"), DataType::Int)])
            .bind(&stmt)
            .unwrap();
        let FromStep::TableFunc { args, .. } = &plan.steps[0] else {
            panic!()
        };
        assert!(matches!(args[0], BoundExpr::Param { index: 0, .. }));
    }

    #[test]
    fn unresolved_reference_errors() {
        let cat = catalog();
        let stmt = select("SELECT GQ.Qual FROM TABLE (GetQuality(Nowhere)) AS GQ");
        assert!(PlanBuilder::new(&cat).bind(&stmt).is_err());
    }

    #[test]
    fn pushdown_into_local_scan() {
        let cat = catalog();
        let stmt = select("SELECT S.Name FROM Suppliers AS S WHERE S.SupplierNo = 1");
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        let FromStep::ScanLocal { pushdown, .. } = &plan.steps[0] else {
            panic!()
        };
        assert_ne!(*pushdown, Predicate::True);
        assert!(plan.step_filters[0].is_none(), "fully pushed down");
    }

    #[test]
    fn cross_item_predicate_becomes_join_key() {
        let cat = catalog();
        let stmt = select(
            "SELECT 1 FROM TABLE (GetQuality(1)) AS GQ, TABLE (GetReliability(1)) AS GR WHERE GQ.Qual = GR.Relia",
        );
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert!(plan.step_filters[0].is_none());
        assert!(plan.step_filters[1].is_none(), "extracted as a join key");
        assert!(plan.step_join_keys[0].is_none());
        let jk = plan.step_join_keys[1].as_ref().expect("equi-join key");
        // GR.Relia is column 0 of the GR step; the probe reads GQ.Qual.
        assert_eq!(jk.build, vec![0]);
        assert_eq!(
            jk.probe,
            vec![BoundExpr::Column {
                index: 0,
                data_type: DataType::Int
            }]
        );
    }

    #[test]
    fn dependent_table_func_keeps_residual_filter() {
        // GQ is lateral (depends on S), so its conjunct must stay a filter:
        // its rows are already correlated per prefix row.
        let cat = catalog();
        let stmt = select(
            "SELECT 1 FROM Suppliers AS S, TABLE (GetQuality(S.SupplierNo)) AS GQ WHERE GQ.Qual = S.SupplierNo",
        );
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert!(plan.step_join_keys[1].is_none());
        assert!(plan.step_filters[1].is_some());
    }

    #[test]
    fn incomparable_equality_stays_residual() {
        // VARCHAR = INT would error at runtime under sql_cmp; the hash path
        // cannot reproduce that, so the conjunct must stay a filter.
        let cat = catalog();
        let stmt = select(
            "SELECT 1 FROM TABLE (GetQuality(1)) AS GQ, Suppliers AS S WHERE S.Name = GQ.Qual",
        );
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert!(plan.step_join_keys[1].is_none());
        assert!(plan.step_filters[1].is_some());
    }

    #[test]
    fn param_predicate_not_pushed_to_storage() {
        let cat = catalog();
        let stmt = select("SELECT S.Name FROM Suppliers AS S WHERE S.SupplierNo = N");
        let plan = PlanBuilder::new(&cat)
            .with_host_params(vec![(Ident::new("N"), DataType::Int)])
            .bind(&stmt)
            .unwrap();
        let FromStep::ScanLocal { pushdown, .. } = &plan.steps[0] else {
            panic!()
        };
        assert_eq!(*pushdown, Predicate::True);
        // The parameter equality is extracted as a (degenerate, step-0)
        // join key, which the executor can serve with an index probe.
        assert!(plan.step_filters[0].is_none());
        let jk = plan.step_join_keys[0].as_ref().expect("param join key");
        assert_eq!(jk.build, vec![0]);
        assert!(matches!(jk.probe[0], BoundExpr::Param { index: 0, .. }));
    }

    #[test]
    fn aggregate_order_by_binds_to_output_columns() {
        let cat = catalog();
        let stmt = select(
            "SELECT S.Name, COUNT(*) AS n FROM Suppliers AS S GROUP BY S.Name ORDER BY 2 DESC",
        );
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert_eq!(plan.order_by.len(), 1);
        assert!(matches!(
            plan.order_by[0],
            (
                BoundExpr::Column {
                    index: 1,
                    data_type: DataType::BigInt
                },
                false
            )
        ));
        // Out-of-range ordinal and non-output expressions are bind errors.
        let stmt = select("SELECT COUNT(*) FROM Suppliers AS S ORDER BY 3");
        assert!(PlanBuilder::new(&cat).bind(&stmt).is_err());
        let stmt = select("SELECT COUNT(*) FROM Suppliers AS S ORDER BY S.SupplierNo");
        assert!(PlanBuilder::new(&cat).bind(&stmt).is_err());
    }

    #[test]
    fn cast_function_is_recognized() {
        let cat = catalog();
        let stmt = select("SELECT BIGINT(GQ.Qual) FROM TABLE (GetQuality(1)) AS GQ");
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert!(matches!(plan.projection[0].0, BoundExpr::Cast { .. }));
        assert_eq!(plan.out_schema.columns()[0].data_type, DataType::BigInt);
    }

    #[test]
    fn nested_table_function_rejected_with_hint() {
        let cat = catalog();
        let stmt = select("SELECT 1 FROM TABLE (GetQuality(GetReliability(1))) AS GQ");
        let err = PlanBuilder::new(&cat).bind(&stmt).unwrap_err();
        assert!(err.to_string().contains("nested") || err.to_string().contains("nesting"));
    }

    #[test]
    fn wildcards_expand() {
        let cat = catalog();
        let stmt = select("SELECT * FROM Suppliers AS S, TABLE (GetQuality(S.SupplierNo)) AS GQ");
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert_eq!(plan.out_schema.len(), 3);
        let stmt =
            select("SELECT GQ.* FROM Suppliers AS S, TABLE (GetQuality(S.SupplierNo)) AS GQ");
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert_eq!(plan.out_schema.len(), 1);
    }

    #[test]
    fn constant_folding_collapses_literals() {
        let cat = catalog();
        let stmt = select("SELECT 1 + 2 * 3 FROM Suppliers AS S");
        let plan = PlanBuilder::new(&cat).bind(&stmt).unwrap();
        assert_eq!(plan.projection[0].0, BoundExpr::Literal(Value::Int(7)));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let cat = catalog();
        let stmt = select("SELECT 1 FROM Suppliers AS S, Suppliers AS S");
        assert!(PlanBuilder::new(&cat).bind(&stmt).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let cat = catalog();
        let stmt = select("SELECT 1 FROM TABLE (GetQuality(1, 2)) AS GQ");
        assert!(PlanBuilder::new(&cat).bind(&stmt).is_err());
    }
}
