//! User-defined table functions and their charge specifications.

use std::fmt;
use std::sync::Arc;

use fedwf_sim::{Component, Meter};
use fedwf_sql::SelectStmt;
use fedwf_types::{DataType, FedResult, Ident, SchemaRef, Table, Value};

/// One cost item booked around a UDTF invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChargeItem {
    pub component: Component,
    pub step: String,
    pub micros: u64,
}

impl ChargeItem {
    pub fn new(component: Component, step: impl Into<String>, micros: u64) -> ChargeItem {
        ChargeItem {
            component,
            step: step.into(),
            micros,
        }
    }
}

/// The cost sequence an architecture attaches to a UDTF: `on_start` is
/// booked before the body runs, `on_finish` after. This is how a single
/// executor reproduces both columns of the paper's Fig. 6 — an A-UDTF
/// carries prepare/RMI/controller charges, an I-UDTF carries its
/// start/finish charges, and the WfMS-connecting UDTF carries the
/// connect-process-RMI-controller sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChargeSpec {
    pub on_start: Vec<ChargeItem>,
    pub on_finish: Vec<ChargeItem>,
}

impl ChargeSpec {
    pub fn none() -> ChargeSpec {
        ChargeSpec::default()
    }

    pub fn book_start(&self, meter: &mut Meter) {
        for c in &self.on_start {
            meter.charge(c.component, c.step.clone(), c.micros);
        }
    }

    pub fn book_finish(&self, meter: &mut Meter) {
        for c in &self.on_finish {
            meter.charge(c.component, c.step.clone(), c.micros);
        }
    }
}

/// A native UDTF body: gets the argument values and the caller's meter (so
/// that e.g. the WfMS-connecting UDTF can thread virtual time through the
/// workflow engine's fork/join accounting).
pub type NativeBody = Arc<dyn Fn(&[Value], &mut Meter) -> FedResult<Table> + Send + Sync>;

/// How a UDTF is implemented.
#[derive(Clone)]
pub enum UdtfKind {
    /// A closure — A-UDTFs, "Java" I-UDTFs, wrapper-connecting UDTFs.
    Native(NativeBody),
    /// A SQL-bodied I-UDTF (`LANGUAGE SQL RETURN SELECT ...`); executed by
    /// the FDBS engine with the parameters bound.
    Sql(Box<SelectStmt>),
}

impl fmt::Debug for UdtfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdtfKind::Native(_) => write!(f, "Native(..)"),
            UdtfKind::Sql(body) => write!(f, "Sql({body})"),
        }
    }
}

/// A registered user-defined table function.
#[derive(Debug, Clone)]
pub struct Udtf {
    pub name: Ident,
    pub params: Vec<(Ident, DataType)>,
    pub returns: SchemaRef,
    pub kind: UdtfKind,
    pub charges: ChargeSpec,
    /// Declared mapping-case fan-out: the expected number of result rows
    /// per invocation, used by the cost-based optimizer to estimate the
    /// cardinality through a lateral TABLE(...) step. The paper's 1:n
    /// mapping case declares n > 1, the n:1 case a fraction < 1; the
    /// default is the neutral 1:1.
    pub fanout: f64,
}

impl Udtf {
    pub fn native(
        name: impl Into<Ident>,
        params: Vec<(Ident, DataType)>,
        returns: SchemaRef,
        body: impl Fn(&[Value], &mut Meter) -> FedResult<Table> + Send + Sync + 'static,
    ) -> Udtf {
        Udtf {
            name: name.into(),
            params,
            returns,
            kind: UdtfKind::Native(Arc::new(body)),
            charges: ChargeSpec::none(),
            fanout: 1.0,
        }
    }

    pub fn with_charges(mut self, charges: ChargeSpec) -> Udtf {
        self.charges = charges;
        self
    }

    /// Declare the mapping-case fan-out (rows out per invocation).
    /// Non-finite or non-positive hints are ignored.
    pub fn with_fanout(mut self, fanout: f64) -> Udtf {
        if fanout.is_finite() && fanout > 0.0 {
            self.fanout = fanout;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwf_types::Schema;

    #[test]
    fn charge_spec_books_in_order() {
        let spec = ChargeSpec {
            on_start: vec![
                ChargeItem::new(Component::Udtf, "Start I-UDTF", 10),
                ChargeItem::new(Component::Rmi, "RMI call", 5),
            ],
            on_finish: vec![ChargeItem::new(Component::Udtf, "Finish I-UDTF", 3)],
        };
        let mut meter = Meter::new();
        spec.book_start(&mut meter);
        assert_eq!(meter.now_us(), 15);
        spec.book_finish(&mut meter);
        assert_eq!(meter.now_us(), 18);
        assert_eq!(meter.charges()[1].step, "RMI call");
    }

    #[test]
    fn native_udtf_invokes_body() {
        let udtf = Udtf::native(
            "Answer",
            vec![],
            Arc::new(Schema::of(&[("x", DataType::Int)])),
            |_args, _meter| Ok(Table::scalar("x", Value::Int(1))),
        );
        let UdtfKind::Native(body) = &udtf.kind else {
            panic!()
        };
        let mut meter = Meter::new();
        let t = body(&[], &mut meter).unwrap();
        assert_eq!(t.row_count(), 1);
    }
}
