//! The FDBS catalog: local tables, foreign tables, table functions.

use std::collections::BTreeMap;
use std::sync::Arc;

use fedwf_relstore::Database;
use fedwf_types::sync::RwLock;
use fedwf_types::{FedError, FedResult, Ident, SchemaRef};

use fedwf_relstore::Predicate;

use crate::sqlmed::ForeignServer;
use crate::stats::TableStatistics;
use crate::udtf::Udtf;

/// Where a table name resolves to.
#[derive(Clone)]
pub enum TableOrigin {
    /// A table in the FDBS's own storage.
    Local,
    /// A table at a foreign SQL source.
    Foreign {
        server: Arc<dyn ForeignServer>,
        remote_name: String,
    },
}

impl std::fmt::Debug for TableOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableOrigin::Local => write!(f, "Local"),
            TableOrigin::Foreign {
                server,
                remote_name,
            } => write!(f, "Foreign({}/{remote_name})", server.name()),
        }
    }
}

/// The catalog. Local table storage lives in an embedded relstore
/// [`Database`]; foreign tables map to [`ForeignServer`]s; table functions
/// are [`Udtf`]s.
pub struct Catalog {
    local: Database,
    foreign_tables: RwLock<BTreeMap<Ident, ForeignTableEntry>>,
    udtfs: RwLock<BTreeMap<Ident, Arc<Udtf>>>,
    /// ANALYZE output, keyed by the table's catalog name. Local entries
    /// carry the mutation epoch they were collected at and go stale when
    /// the table mutates past it; foreign entries stay until re-ANALYZE.
    stats: RwLock<BTreeMap<Ident, Arc<TableStatistics>>>,
}

/// A foreign-table registration: the server plus the remote table name.
type ForeignTableEntry = (Arc<dyn ForeignServer>, String);

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog::new()
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::with_local(Database::new("fdbs"))
    }

    /// A catalog over an explicit local store — the integration server
    /// passes a durable (WAL-backed) [`Database`] here when configured
    /// with a data directory.
    pub fn with_local(local: Database) -> Catalog {
        Catalog {
            local,
            foreign_tables: RwLock::new(BTreeMap::new()),
            udtfs: RwLock::new(BTreeMap::new()),
            stats: RwLock::new(BTreeMap::new()),
        }
    }

    /// The FDBS's own storage.
    pub fn local(&self) -> &Database {
        &self.local
    }

    /// Register a foreign table: `local_name` resolves to
    /// `remote_name` at `server`.
    pub fn register_foreign_table(
        &self,
        local_name: impl Into<Ident>,
        server: Arc<dyn ForeignServer>,
        remote_name: impl Into<String>,
    ) -> FedResult<()> {
        let local_name = local_name.into();
        let remote_name = remote_name.into();
        // Validate eagerly: the remote table must exist.
        server.table_schema(&remote_name)?;
        if self.local.has_table(local_name.as_str()) {
            return Err(FedError::catalog(format!(
                "cannot register foreign table {local_name}: a local table of that name exists"
            )));
        }
        let mut tables = self.foreign_tables.write();
        if tables.contains_key(&local_name) {
            return Err(FedError::catalog(format!(
                "foreign table {local_name} already registered"
            )));
        }
        tables.insert(local_name, (server, remote_name));
        Ok(())
    }

    /// Resolve a table name to its origin and schema.
    pub fn resolve_table(&self, name: &Ident) -> FedResult<(TableOrigin, SchemaRef)> {
        if self.local.has_table(name.as_str()) {
            return Ok((TableOrigin::Local, self.local.table_schema(name.as_str())?));
        }
        if let Some((server, remote)) = self.foreign_tables.read().get(name) {
            let schema = server.table_schema(remote)?;
            return Ok((
                TableOrigin::Foreign {
                    server: server.clone(),
                    remote_name: remote.clone(),
                },
                schema,
            ));
        }
        Err(FedError::catalog(format!("unknown table {name}")))
    }

    /// Register a table function. Replaces nothing: re-registration errors.
    pub fn register_udtf(&self, udtf: Udtf) -> FedResult<()> {
        let mut udtfs = self.udtfs.write();
        if udtfs.contains_key(&udtf.name) {
            return Err(FedError::catalog(format!(
                "function {} already registered",
                udtf.name
            )));
        }
        udtfs.insert(udtf.name.clone(), Arc::new(udtf));
        Ok(())
    }

    /// Drop a table function.
    pub fn drop_udtf(&self, name: &Ident) -> FedResult<()> {
        if self.udtfs.write().remove(name).is_none() {
            return Err(FedError::catalog(format!("unknown function {name}")));
        }
        Ok(())
    }

    pub fn udtf(&self, name: &Ident) -> FedResult<Arc<Udtf>> {
        self.udtfs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| FedError::catalog(format!("unknown function {name}")))
    }

    pub fn has_udtf(&self, name: &Ident) -> bool {
        self.udtfs.read().contains_key(name)
    }

    /// ANALYZE one table: collect full statistics and store them. Local
    /// tables are stamped with their mutation epoch (read *before* the
    /// scan, so a concurrent mutation makes the entry stale rather than
    /// silently wrong); foreign statistics carry no epoch.
    pub fn analyze_table(&self, name: &Ident) -> FedResult<Arc<TableStatistics>> {
        let (origin, _) = self.resolve_table(name)?;
        let collected = match origin {
            TableOrigin::Local => {
                let epoch = self.local.table_mutation_epoch(name.as_str())?;
                let table = self.local.scan(name.as_str(), &Predicate::True)?;
                TableStatistics::from_table(&table).with_epoch(epoch)
            }
            TableOrigin::Foreign {
                server,
                remote_name,
            } => server.collect_statistics(&remote_name)?,
        };
        let stats = Arc::new(collected);
        self.stats.write().insert(name.clone(), stats.clone());
        Ok(stats)
    }

    /// ANALYZE every table in the catalog (local and foreign). Returns
    /// the number of tables analyzed.
    pub fn analyze(&self) -> FedResult<usize> {
        let mut names: Vec<Ident> = self
            .local
            .table_names()
            .into_iter()
            .map(Ident::new)
            .collect();
        names.extend(self.foreign_tables.read().keys().cloned());
        for name in &names {
            self.analyze_table(name)?;
        }
        Ok(names.len())
    }

    /// Fresh statistics for a table, if any. A local entry whose source
    /// has mutated past the collection epoch is dropped and `None` is
    /// returned — the optimizer then falls back to live row counts.
    pub fn statistics(&self, name: &Ident) -> Option<Arc<TableStatistics>> {
        let entry = self.stats.read().get(name).cloned()?;
        if let Some(epoch) = entry.epoch {
            let fresh = self
                .local
                .table_mutation_epoch(name.as_str())
                .map(|current| current <= epoch)
                .unwrap_or(false);
            if !fresh {
                self.stats.write().remove(name);
                return None;
            }
        }
        Some(entry)
    }

    /// Drop any stored statistics for one table (DDL invalidation).
    pub fn invalidate_statistics(&self, name: &Ident) {
        self.stats.write().remove(name);
    }

    pub fn udtf_names(&self) -> Vec<String> {
        self.udtfs
            .read()
            .values()
            .map(|u| u.name.as_str().to_string())
            .collect()
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("local_tables", &self.local.table_names())
            .field(
                "foreign_tables",
                &self
                    .foreign_tables
                    .read()
                    .keys()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>(),
            )
            .field("udtfs", &self.udtf_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqlmed::RelstoreServer;
    use fedwf_types::{DataType, Schema, Table, Value};

    fn catalog_with_foreign() -> Catalog {
        let cat = Catalog::new();
        let remote = Database::new("remote");
        remote
            .create_table("T", Arc::new(Schema::of(&[("a", DataType::Int)])))
            .unwrap();
        let server = Arc::new(RelstoreServer::new("erp", Arc::new(remote)));
        cat.register_foreign_table("RemoteT", server, "T").unwrap();
        cat
    }

    #[test]
    fn local_table_resolution() {
        let cat = Catalog::new();
        cat.local()
            .create_table("L", Arc::new(Schema::of(&[("x", DataType::Int)])))
            .unwrap();
        let (origin, schema) = cat.resolve_table(&Ident::new("l")).unwrap();
        assert!(matches!(origin, TableOrigin::Local));
        assert_eq!(schema.len(), 1);
    }

    #[test]
    fn foreign_table_resolution() {
        let cat = catalog_with_foreign();
        let (origin, _) = cat.resolve_table(&Ident::new("remotet")).unwrap();
        assert!(matches!(origin, TableOrigin::Foreign { .. }));
        assert!(cat.resolve_table(&Ident::new("nope")).is_err());
    }

    #[test]
    fn foreign_registration_validates_remote() {
        let cat = Catalog::new();
        let remote = Database::new("remote");
        let server = Arc::new(RelstoreServer::new("erp", Arc::new(remote)));
        assert!(cat.register_foreign_table("X", server, "Missing").is_err());
    }

    #[test]
    fn analyze_collects_and_mutations_invalidate() {
        use fedwf_types::Row;
        let cat = catalog_with_foreign();
        cat.local()
            .create_table(
                "L",
                Arc::new(Schema::of(&[("k", DataType::Int), ("v", DataType::Int)])),
            )
            .unwrap();
        for k in 0..10 {
            cat.local()
                .insert("L", Row::new(vec![Value::Int(k), Value::Int(k % 3)]))
                .unwrap();
        }
        // The foreign remote table is empty but analyzable.
        assert_eq!(cat.analyze().unwrap(), 2);
        let l = cat.statistics(&Ident::new("L")).unwrap();
        assert_eq!(l.row_count, 10);
        assert_eq!(l.columns[0].ndv, 10);
        assert_eq!(l.columns[1].ndv, 3);
        assert!(l.epoch.is_some());
        let f = cat.statistics(&Ident::new("RemoteT")).unwrap();
        assert_eq!(f.row_count, 0);
        assert!(f.epoch.is_none());
        // A mutation bumps the table's epoch past the collection stamp.
        cat.local()
            .insert("L", Row::new(vec![Value::Int(99), Value::Int(0)]))
            .unwrap();
        assert!(cat.statistics(&Ident::new("L")).is_none());
        // Foreign entries carry no epoch and survive local churn.
        assert!(cat.statistics(&Ident::new("RemoteT")).is_some());
        // Explicit invalidation drops the entry.
        cat.invalidate_statistics(&Ident::new("RemoteT"));
        assert!(cat.statistics(&Ident::new("RemoteT")).is_none());
    }

    #[test]
    fn udtf_registration_and_drop() {
        let cat = Catalog::new();
        let udtf = Udtf::native(
            "F",
            vec![],
            Arc::new(Schema::of(&[("x", DataType::Int)])),
            |_, _| Ok(Table::scalar("x", Value::Int(1))),
        );
        cat.register_udtf(udtf).unwrap();
        assert!(cat.has_udtf(&Ident::new("f")));
        let dup = Udtf::native(
            "F",
            vec![],
            Arc::new(Schema::of(&[("x", DataType::Int)])),
            |_, _| Ok(Table::scalar("x", Value::Int(1))),
        );
        assert!(cat.register_udtf(dup).is_err());
        cat.drop_udtf(&Ident::new("F")).unwrap();
        assert!(!cat.has_udtf(&Ident::new("f")));
        assert!(cat.drop_udtf(&Ident::new("F")).is_err());
    }
}
