//! The vectorized streaming executor: typed column batches end to end.
//!
//! This is [`crate::exec::ExecMode::Streaming`] with the `Vec<Row>` batches
//! replaced by [`ColumnBatch`]es. The source pulls column vectors straight
//! out of relstore's version chains (same chunk bounds, same pinned
//! snapshot epoch), residual filters evaluate predicates into selection
//! vectors ([`crate::vexpr`]), hash-join and index probes hash join keys
//! over column slices, and the sinks aggregate/project over typed vectors.
//! Rows materialize only where they must: at pipeline breakers (build
//! sides, sort buffers, UDTF compositions) and at the client boundary.
//!
//! Parity contract with the row-at-a-time streaming path (which stays
//! callable via [`crate::engine::ExecOptions::vectorized`]):
//!
//! * **Results**: identical rows in identical order. Shared scalar kernels
//!   plus the fallback rule below make this hold bit-for-bit, NaN and NULL
//!   included.
//! * **Charges**: identical virtual-time totals. Per-row charges are
//!   booked per batch (`amount × rows`), deferred charges reuse the row
//!   path's [`Op::finish`] formulas verbatim.
//! * **Spans**: identical probe names and tree shape; actuals count column
//!   -vector bytes (validity words included) where a columnar batch flowed.
//! * **Errors**: any vectorized kernel error demotes that batch to the
//!   row-at-a-time reference implementation, whose outcome — including
//!   *which* error surfaces first — is authoritative. Vectorized kernels
//!   evaluate eagerly and must never surface an error the lazy row path
//!   would not raise.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use fedwf_relstore::{Predicate, RowId};
use fedwf_sim::{Component, CostModel, Meter, SpanName};
use fedwf_types::{ColumnBatch, FedResult, Ident, ResultExt, Row, Table, TxnId, Value, ValueKey};

use crate::engine::Fdbs;
use crate::exec::{
    build_key, build_positions, elapsed_ns, finish_aggregate, join_key_checked, op_estimates,
    op_probe_name, prepare_step_op, probe_mark, scalar_tail, sink_push, table_from_rows,
    tally_rows, use_index_probe, Aggregator, ExecMode, Op, Sink, StreamProbe, StreamProbes,
    STREAM_BATCH_ROWS,
};
use crate::expr::BoundExpr;
use crate::plan::{Access, AggColumn, FromStep, Plan};
use crate::vexpr::{eval_filter_mask, eval_vcol, VCol};

/// A streaming batch: columnar while it can be, rows once an operator
/// had to materialize (join output, UDTF composition, fallback).
///
/// A columnar batch optionally carries a *selection vector*: sorted row
/// indices that survived a filter. The filter itself never copies column
/// data — downstream consumers either read through the selection (the
/// project sink) or gather once on entry (joins, aggregates, fallbacks).
pub(crate) enum VBatch {
    Cols(ColumnBatch, Option<Vec<u32>>),
    Rows(Vec<Row>),
}

impl VBatch {
    fn len(&self) -> usize {
        match self {
            VBatch::Cols(b, sel) => sel.as_ref().map_or(b.len(), Vec::len),
            VBatch::Rows(r) => r.len(),
        }
    }

    /// Bytes for the observability counters: column-vector bytes
    /// (validity included) for columnar batches — the selected subset
    /// when a selection vector is attached — boxed-row bytes once rows
    /// exist.
    fn approx_bytes(&self) -> u64 {
        match self {
            VBatch::Cols(b, None) => b.approx_bytes() as u64,
            VBatch::Cols(b, Some(sel)) => b.approx_bytes_selected(sel) as u64,
            VBatch::Rows(r) => r.iter().map(Row::approx_bytes).sum::<usize>() as u64,
        }
    }
}

/// Collapse a selection vector into a dense batch (a real gather); a
/// batch without one passes through untouched.
fn materialize(b: ColumnBatch, sel: Option<Vec<u32>>) -> ColumnBatch {
    match sel {
        Some(sel) => b.gather(&sel),
        None => b,
    }
}

/// Boxed rows for the selected subset — the row-path handoff used by
/// fallbacks and pipeline breakers that store rows.
fn selected_rows(b: &ColumnBatch, sel: Option<&[u32]>) -> Vec<Row> {
    match sel {
        Some(sel) => sel.iter().map(|&i| b.row(i as usize)).collect(),
        None => b.to_rows(),
    }
}

/// Record a columnar batch on the meter's materialization counters —
/// the columnar counterpart of [`tally_rows`].
pub(crate) fn tally_batch(meter: &mut Meter, batch: &ColumnBatch) {
    meter.tally_materialized(batch.len() as u64, batch.approx_bytes() as u64);
}

/// The columnar batch source — mirrors `exec::Source` including the
/// deferred scan charge and the snapshot epoch pinned at first pull.
enum VSource<'p> {
    Rows(Option<Vec<Row>>),
    Chunked {
        table: &'p Ident,
        pushdown: &'p Predicate,
        projection: Option<&'p [usize]>,
        next: Option<RowId>,
        started: bool,
        matched: u64,
        epoch: Option<TxnId>,
    },
}

impl VSource<'_> {
    fn next_batch(&mut self, fdbs: &Fdbs) -> FedResult<Option<VBatch>> {
        match self {
            VSource::Rows(batch) => Ok(batch.take().map(VBatch::Rows)),
            VSource::Chunked {
                table,
                pushdown,
                projection,
                next,
                started,
                matched,
                epoch,
            } => {
                if *started && next.is_none() {
                    return Ok(None);
                }
                let local = fdbs.catalog().local();
                let pinned = *epoch.get_or_insert_with(|| local.snapshot_epoch());
                let start = next.unwrap_or(0);
                let (batch, cont) = local.scan_chunk_columnar(
                    table.as_str(),
                    pushdown,
                    *projection,
                    start,
                    STREAM_BATCH_ROWS,
                    pinned,
                )?;
                *started = true;
                *next = cont;
                *matched += batch.len() as u64;
                Ok(Some(VBatch::Cols(batch, None)))
            }
        }
    }

    fn finish(&self, cost: &CostModel, meter: &mut Meter) {
        if let VSource::Chunked { matched, .. } = self {
            meter.charge(
                Component::Fdbs,
                "Scan local table",
                cost.predicate_eval * matched,
            );
        }
    }
}

/// Build the streaming operator for one lateral step with columnar eager
/// work: local and foreign build sides cross the storage / SQL-MED
/// boundary as column batches (tallied in column bytes) and materialize
/// to rows only because they *are* pipeline-breaker state. Steps with no
/// columnar advantage delegate to the row path's [`prepare_step_op`].
#[allow(clippy::too_many_arguments)]
fn prepare_step_op_vectorized<'p>(
    fdbs: &Fdbs,
    step: &'p FromStep,
    position: usize,
    jk: Option<&'p crate::plan::JoinKey>,
    proj: Option<&'p [usize]>,
    access: Access,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Op<'p>> {
    let cost = fdbs.cost();
    match step {
        FromStep::ScanLocal {
            table,
            pushdown,
            schema,
            ..
        } => {
            if let Some(jk) = jk {
                if use_index_probe(fdbs, table, schema, jk, access)? {
                    return prepare_step_op(
                        fdbs,
                        step,
                        position,
                        Some(jk),
                        proj,
                        access,
                        params,
                        meter,
                    );
                }
                let batch =
                    fdbs.catalog()
                        .local()
                        .scan_project_columnar(table.as_str(), pushdown, proj)?;
                meter.charge(
                    Component::Fdbs,
                    "Scan local table",
                    cost.predicate_eval * batch.len() as u64,
                );
                tally_batch(meter, &batch);
                return Ok(Op::HashJoin {
                    build_rows: batch.to_rows(),
                    build_cols: build_positions(&jk.build, proj)?,
                    probe: &jk.probe,
                    table: None,
                    out_count: 0,
                });
            }
            let batch =
                fdbs.catalog()
                    .local()
                    .scan_project_columnar(table.as_str(), pushdown, proj)?;
            meter.charge(
                Component::Fdbs,
                "Scan local table",
                cost.predicate_eval * batch.len() as u64,
            );
            tally_batch(meter, &batch);
            Ok(Op::Cross {
                right: batch.to_rows(),
                charge_select: false,
                prefix_rows: 0,
            })
        }
        FromStep::ScanForeign {
            server,
            remote_name,
            pushdown,
            ..
        } => {
            // The SQL/MED boundary ships columns: one typed batch comes
            // back from the wrapper, not boxed rows.
            let batch = server.scan_project_columnar(remote_name, pushdown, proj)?;
            meter.charge(
                Component::Fdbs,
                format!("Subquery to SQL source {}", server.name()),
                cost.rmi_call + cost.rmi_return,
            );
            tally_batch(meter, &batch);
            let rows = batch.to_rows();
            match jk {
                Some(jk) => Ok(Op::HashJoin {
                    build_cols: build_positions(&jk.build, proj)?,
                    build_rows: rows,
                    probe: &jk.probe,
                    table: None,
                    out_count: 0,
                }),
                None => Ok(Op::Cross {
                    right: rows,
                    charge_select: false,
                    prefix_rows: 0,
                }),
            }
        }
        FromStep::TableFunc { .. } => {
            prepare_step_op(fdbs, step, position, jk, proj, access, params, meter)
        }
    }
}

/// What a vectorized operator arm decided for a columnar batch.
enum Planned {
    Done(VBatch),
    /// The kernel could not handle the batch (expression error, operator
    /// with no columnar form): re-run it through the row path.
    Fallback,
}

/// Push one batch through one operator. Columnar batches take the
/// vectorized arms; row batches and fallbacks use [`Op::push`] verbatim.
fn vop_push(
    fdbs: &Fdbs,
    op: &mut Op<'_>,
    batch: VBatch,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<VBatch> {
    let b = match batch {
        VBatch::Rows(rows) => return op.push(fdbs, rows, params, meter).map(VBatch::Rows),
        // Operators consume dense batches: a selection left over from an
        // upstream filter is gathered once here (rare — only stacked
        // filters or a filter feeding a join see one).
        VBatch::Cols(b, sel) => materialize(b, sel),
    };
    let planned = match op {
        Op::Filter { filter } => match eval_filter_mask(filter, &b, params) {
            Ok(sel) => {
                // One record for the whole batch: same total as the row
                // path's per-row "Evaluate predicates" charges.
                meter.charge(
                    Component::Fdbs,
                    "Evaluate predicates",
                    fdbs.cost().predicate_eval * b.len() as u64,
                );
                // No gather: the surviving rows ride along as a selection
                // vector for the consumer to read through.
                let sel = (sel.len() != b.len()).then_some(sel);
                Planned::Done(VBatch::Cols(b.clone(), sel))
            }
            // The row path re-evaluates from scratch: charges, partial
            // output, and the authoritative error all come from it.
            Err(_) => Planned::Fallback,
        },
        Op::HashJoin {
            build_rows,
            build_cols,
            probe,
            table,
            out_count,
        } => {
            if b.is_empty() || build_rows.is_empty() {
                Planned::Done(VBatch::Rows(Vec::new()))
            } else {
                match probe
                    .iter()
                    .map(|p| eval_vcol(p, &b, params))
                    .collect::<FedResult<Vec<VCol>>>()
                {
                    Err(_) => Planned::Fallback,
                    Ok(pcols) => {
                        if table.is_none() {
                            let mut t: HashMap<Vec<ValueKey>, Vec<usize>> = HashMap::new();
                            for (i, row) in build_rows.iter().enumerate() {
                                if let Some(key) = build_key(row, build_cols)? {
                                    t.entry(key).or_default().push(i);
                                }
                            }
                            *table = Some(t);
                        }
                        let t = table.as_ref().expect("hash table built above");
                        let mut out = Vec::new();
                        'rows: for i in 0..b.len() {
                            let mut key = Vec::with_capacity(pcols.len());
                            for pc in &pcols {
                                match join_key_checked(&pc.value_at(i))? {
                                    Some(k) => key.push(k),
                                    None => continue 'rows,
                                }
                            }
                            if let Some(matches) = t.get(&key) {
                                let left = b.row(i);
                                for &bi in matches {
                                    out.push(left.concat(&build_rows[bi]));
                                }
                            }
                        }
                        *out_count += out.len();
                        Planned::Done(VBatch::Rows(out))
                    }
                }
            }
        }
        Op::IndexProbe {
            table,
            pushdown,
            projection,
            build_col,
            probe,
            cache,
            scanned_total,
            out_count,
        } => match eval_vcol(probe, &b, params) {
            Err(_) => Planned::Fallback,
            Ok(pc) => {
                let local = fdbs.catalog().local();
                let mut out = Vec::new();
                for i in 0..b.len() {
                    let v = pc.value_at(i);
                    let Some(key) = join_key_checked(&v)? else {
                        continue;
                    };
                    let matches = match cache.entry(key) {
                        Entry::Occupied(e) => e.into_mut(),
                        Entry::Vacant(e) => {
                            let t = local.scan_eq_project(
                                table.as_str(),
                                *build_col,
                                v,
                                pushdown,
                                *projection,
                            )?;
                            *scanned_total += t.row_count() as u64;
                            let rows = t.into_rows();
                            tally_rows(meter, &rows);
                            e.insert(rows)
                        }
                    };
                    if !matches.is_empty() {
                        let left = b.row(i);
                        for r in matches.iter() {
                            out.push(left.concat(r));
                        }
                    }
                }
                *out_count += out.len();
                Planned::Done(VBatch::Rows(out))
            }
        },
        // Cross products and dependent UDTFs compose whole rows by
        // nature; materialize and reuse the row operator.
        Op::Cross { .. } | Op::DependentUdtf { .. } => Planned::Fallback,
    };
    match planned {
        Planned::Done(v) => Ok(v),
        Planned::Fallback => op.push(fdbs, b.to_rows(), params, meter).map(VBatch::Rows),
    }
}

/// Feed one batch to the sink. Returns `true` when LIMIT is satisfied.
fn vsink_push(
    sink: &mut Sink<'_>,
    plan: &Plan,
    batch: VBatch,
    params: &[Value],
    meter: &mut Meter,
    cost: &CostModel,
) -> FedResult<bool> {
    let (b, sel) = match batch {
        VBatch::Rows(rows) => return sink_push(sink, plan, rows, params, meter, cost),
        VBatch::Cols(b, sel) => (b, sel),
    };
    // DISTINCT interleaves dedup with the LIMIT early-exit per row; the
    // row sink is the reference for that ordering.
    if matches!(sink, Sink::Project { seen: Some(_), .. }) {
        return sink_push(
            sink,
            plan,
            selected_rows(&b, sel.as_deref()),
            params,
            meter,
            cost,
        );
    }
    match sink {
        Sink::Sort(rows) => {
            // The sort buffer is a materialization point; what crossed
            // into it was a column batch, so count column bytes (of the
            // selected subset, if a filter left a selection attached).
            meter.tally_materialized(
                sel.as_ref().map_or(b.len(), Vec::len) as u64,
                match &sel {
                    Some(s) => b.approx_bytes_selected(s) as u64,
                    None => b.approx_bytes() as u64,
                },
            );
            rows.extend(selected_rows(&b, sel.as_deref()));
            Ok(false)
        }
        Sink::Aggregate(agg) => {
            // Aggregation walks every selected row anyway; collapse the
            // selection once so key/argument kernels see a dense batch.
            let b = materialize(b, sel);
            let ap = agg.agg_plan();
            let keys = ap
                .keys
                .iter()
                .map(|k| eval_vcol(k, &b, params))
                .collect::<FedResult<Vec<VCol>>>();
            let args = ap
                .columns
                .iter()
                .map(|(col, _)| match col {
                    AggColumn::Agg { arg: Some(arg), .. } => eval_vcol(arg, &b, params).map(Some),
                    _ => Ok(None),
                })
                .collect::<FedResult<Vec<Option<VCol>>>>();
            match (keys, args) {
                (Ok(kc), Ok(ac)) => {
                    agg.charge_batch(meter, b.len() as u64);
                    for i in 0..b.len() {
                        let keys: Vec<Value> = kc.iter().map(|c| c.value_at(i)).collect();
                        let args: Vec<Option<Value>> = ac
                            .iter()
                            .map(|c| c.as_ref().map(|c| c.value_at(i)))
                            .collect();
                        agg.push_evaled(keys, args);
                    }
                    Ok(false)
                }
                // Key or argument evaluation failed somewhere in the
                // batch: the row path finds the first offending row and
                // charges/accumulates up to it.
                _ => {
                    for row in &b.to_rows() {
                        agg.push(row, params, meter)?;
                    }
                    Ok(false)
                }
            }
        }
        Sink::Project { out, seen: None } => {
            if plan.limit.is_some_and(|l| out.row_count() as u64 >= l) {
                return Ok(true);
            }
            // Bare-column projections read *through* the selection vector:
            // the filter's survivors are never gathered at all. Computed
            // projections collapse the selection first so expressions are
            // only evaluated on surviving rows — exactly the rows the
            // row-at-a-time path would see.
            let bare = plan
                .projection
                .iter()
                .all(|(e, _)| matches!(e, BoundExpr::Column { .. }));
            let (b, sel) = if bare {
                (b, sel)
            } else {
                (materialize(b, sel), None)
            };
            // LIMIT early-exit at batch granularity: only the rows that
            // can still be emitted are projected at all.
            let avail = sel.as_ref().map_or(b.len(), Vec::len);
            let take = match plan.limit {
                Some(l) => avail.min((l - out.row_count() as u64) as usize),
                None => avail,
            };
            let eb = if bare { b.clone() } else { b.head(take) };
            match plan
                .projection
                .iter()
                .map(|(e, _)| eval_vcol(e, &eb, params))
                .collect::<FedResult<Vec<VCol>>>()
            {
                Ok(pcols) => {
                    meter.charge(
                        Component::Fdbs,
                        "Produce result rows",
                        cost.row_output * take as u64,
                    );
                    // Box each projected column for the selected rows in
                    // one typed pass, then zip the columns into rows —
                    // the per-value type/validity dispatch happens once
                    // per column instead of once per cell.
                    let sel_slice = sel.as_deref();
                    let mut emitted: Vec<std::vec::IntoIter<Value>> = pcols
                        .iter()
                        .map(|c| match c {
                            VCol::Const(v) => vec![v.clone(); take],
                            VCol::Col(c) => c.values_selected(eb.len(), sel_slice, take),
                        })
                        .map(Vec::into_iter)
                        .collect();
                    for _ in 0..take {
                        out.push_unchecked(Row::new(
                            emitted
                                .iter_mut()
                                .map(|it| it.next().expect("take values per column"))
                                .collect(),
                        ));
                    }
                    Ok(plan.limit.is_some_and(|l| out.row_count() as u64 >= l))
                }
                Err(_) => {
                    // Row-path reference: evaluate, charge, emit and stop
                    // at LIMIT row by row until the authoritative error.
                    for row in &selected_rows(&b, sel.as_deref()) {
                        let values: Vec<Value> = plan
                            .projection
                            .iter()
                            .map(|(e, _)| e.eval(row.values(), params))
                            .collect::<FedResult<_>>()?;
                        meter.charge(Component::Fdbs, "Produce result rows", cost.row_output);
                        out.push_unchecked(Row::new(values));
                        if plan.limit.is_some_and(|l| out.row_count() as u64 >= l) {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
            }
        }
        Sink::Project { seen: Some(_), .. } => unreachable!("handled above"),
    }
}

/// [`crate::exec::execute_plan_with_mode`]'s streaming strategy over
/// column batches. Mirrors `execute_streaming` stage for stage — same
/// probe names, same deferred charges, same LIMIT-driven early stop.
pub(crate) fn execute_streaming_vectorized(
    fdbs: &Fdbs,
    plan: &Plan,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    let cost = fdbs.cost();

    let chunk_step0 = matches!(plan.steps.first(), Some(FromStep::ScanLocal { .. }))
        && plan.step_join_keys.first().is_some_and(|jk| jk.is_none());
    let (mut source, start) = if chunk_step0 {
        let Some(FromStep::ScanLocal {
            table, pushdown, ..
        }) = plan.steps.first()
        else {
            unreachable!("checked above");
        };
        let projection = plan.step_projections.first().and_then(|p| p.as_deref());
        (
            VSource::Chunked {
                table,
                pushdown,
                projection,
                next: None,
                started: false,
                matched: 0,
                epoch: None,
            },
            1,
        )
    } else {
        (VSource::Rows(Some(vec![Row::empty()])), 0)
    };

    let mut ops: Vec<Op<'_>> = Vec::new();
    if chunk_step0 {
        if let Some(filter) = &plan.step_filters[0] {
            ops.push(Op::Filter { filter });
        }
    }
    for (i, step) in plan.steps.iter().enumerate().skip(start) {
        let jk = plan.step_join_keys[i].as_ref();
        let proj = plan.step_projections.get(i).and_then(|p| p.as_deref());
        let access = plan.step_access.get(i).copied().unwrap_or_default();
        let op = prepare_step_op_vectorized(fdbs, step, i, jk, proj, access, params, meter)
            .context(format!("evaluating FROM item {} ({step:?})", i + 1))?;
        ops.push(op);
        if let Some(filter) = &plan.step_filters[i] {
            ops.push(Op::Filter { filter });
        }
    }

    let mut sink = if let Some(agg) = &plan.aggregate {
        Sink::Aggregate(Aggregator::new(plan, agg, cost, true))
    } else if !plan.order_by.is_empty() {
        Sink::Sort(Vec::new())
    } else {
        Sink::Project {
            out: Table::new(plan.out_schema.clone()),
            seen: plan.distinct.then(std::collections::HashSet::new),
        }
    };

    let mut probes = meter.tracing().then(|| StreamProbes {
        start_us: meter.now_us(),
        source: StreamProbe::new(match &source {
            VSource::Chunked { table, .. } => SpanName::from(format!("scan {table}")),
            VSource::Rows(_) => SpanName::Static("seed"),
        })
        .with_est(match &source {
            VSource::Chunked { .. } => plan.step_estimates.first().map(|e| e.scan_rows),
            VSource::Rows(_) => None,
        }),
        ops: ops
            .iter()
            .zip(op_estimates(plan, chunk_step0, start))
            .map(|(op, est)| StreamProbe::new(op_probe_name(op)).with_est(est))
            .collect(),
        sink: StreamProbe::new(
            match &sink {
                Sink::Aggregate(_) => "aggregate",
                Sink::Sort(_) => "sort",
                Sink::Project { .. } => "project",
            }
            .to_string(),
        ),
    });
    let tracing = probes.is_some();
    let wall = tracing && meter.wall_sampling();

    loop {
        let (w0, v0) = probe_mark(wall, meter);
        let Some(mut batch) = source.next_batch(fdbs)? else {
            break;
        };
        if let Some(p) = probes.as_mut() {
            p.source.record_counts(
                meter.now_us() - v0,
                elapsed_ns(w0),
                batch.len() as u64,
                batch.approx_bytes(),
            );
        }
        for (i, op) in ops.iter_mut().enumerate() {
            let (w0, v0) = probe_mark(wall, meter);
            batch = vop_push(fdbs, op, batch, params, meter)
                .context(format!("evaluating streaming operator {}", i + 1))?;
            if let Some(p) = probes.as_mut() {
                p.ops[i].record_counts(
                    meter.now_us() - v0,
                    elapsed_ns(w0),
                    batch.len() as u64,
                    batch.approx_bytes(),
                );
            }
        }
        let (w0, v0) = probe_mark(wall, meter);
        let in_counts = tracing.then(|| (batch.len() as u64, batch.approx_bytes()));
        let done = vsink_push(&mut sink, plan, batch, params, meter, cost)?;
        if let Some(p) = probes.as_mut() {
            let (rows, bytes) = in_counts.expect("tracing implies counts");
            p.sink
                .record_counts(meter.now_us() - v0, elapsed_ns(w0), rows, bytes);
        }
        if done {
            break;
        }
    }

    let v0 = meter.now_us();
    source.finish(cost, meter);
    if let Some(p) = probes.as_mut() {
        p.source.virt_us += meter.now_us() - v0;
    }
    for (i, op) in ops.iter().enumerate() {
        let v0 = meter.now_us();
        op.finish(cost, meter);
        if let Some(p) = probes.as_mut() {
            p.ops[i].virt_us += meter.now_us() - v0;
        }
    }

    if let Some(p) = probes.take() {
        let start = p.start_us;
        meter.span_leaf(p.source.into_leaf(start));
        for op_probe in p.ops {
            meter.span_leaf(op_probe.into_leaf(start));
        }
        meter.span_leaf(p.sink.into_leaf(start));
    }

    match sink {
        Sink::Aggregate(agg) => finish_aggregate(plan, agg.finish(meter)?, params),
        Sink::Sort(rows) => scalar_tail(fdbs, plan, rows, params, meter, ExecMode::Streaming),
        Sink::Project { out, .. } => {
            if let Some(limit) = plan.limit {
                if out.row_count() as u64 > limit {
                    let rows: Vec<Row> = out.into_rows().into_iter().take(limit as usize).collect();
                    return Ok(table_from_rows(plan.out_schema.clone(), rows));
                }
            }
            Ok(out)
        }
    }
}
