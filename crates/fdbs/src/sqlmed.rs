//! SQL/MED-style wrapper interfaces (Management of External Data).
//!
//! The paper's architecture connects the FDBS to external systems through
//! wrappers "according to the draft of SQL/MED". Two wrapper flavours
//! matter here:
//!
//! * [`ForeignServer`] — a remote *SQL source* the FDBS federates: the FDBS
//!   pushes a subquery (predicate + projection) down and gets a table back.
//!   [`RelstoreServer`] adapts an embedded [`fedwf_relstore::Database`].
//! * foreign *functions* are handled through the UDTF machinery
//!   ([`crate::udtf::Udtf`] with a native body); the `fedwf-wrapper` crate
//!   provides the implementation that bridges to the workflow engine.

use std::sync::Arc;

use fedwf_relstore::{Database, Predicate};
use fedwf_types::{ColumnBatch, FedResult, SchemaRef, Table};

use crate::stats::TableStatistics;

/// A remote SQL source reachable through a wrapper.
pub trait ForeignServer: Send + Sync {
    /// Server name (for catalog bookkeeping and error messages).
    fn name(&self) -> &str;

    /// Schema of a remote table.
    fn table_schema(&self, table: &str) -> FedResult<SchemaRef>;

    /// Execute a pushed-down subquery: scan `table` applying `predicate`
    /// remotely. The FDBS keeps residual predicates it could not push.
    fn scan(&self, table: &str, predicate: &Predicate) -> FedResult<Table>;

    /// Pushed-down subquery with a projection: return only the columns named
    /// by `projection` (indexes into the remote table's full layout, which
    /// the `predicate` also uses). The default implementation scans the full
    /// rows and prunes on the FDBS side — a wrapper that can push the
    /// projection across the wire (like [`RelstoreServer`]) should override
    /// it so the pruned columns never travel.
    fn scan_project(
        &self,
        table: &str,
        predicate: &Predicate,
        projection: Option<&[usize]>,
    ) -> FedResult<Table> {
        let full = self.scan(table, predicate)?;
        match projection {
            None => Ok(full),
            Some(proj) => {
                let schema = Arc::new(full.schema().project(proj));
                let mut out = Table::new(schema);
                for row in full.rows() {
                    out.push_unchecked(row.project(proj));
                }
                Ok(out)
            }
        }
    }

    /// Columnar pushed-down subquery: the result set crosses the wrapper
    /// boundary as one typed [`ColumnBatch`], so transfer cost is measured
    /// in column-vector bytes rather than boxed rows. The default adapts
    /// the row-producing [`ForeignServer::scan_project`]; a wrapper whose
    /// remote side is column-native (like [`RelstoreServer`]) should
    /// override it so no intermediate rows exist at all.
    fn scan_project_columnar(
        &self,
        table: &str,
        predicate: &Predicate,
        projection: Option<&[usize]>,
    ) -> FedResult<ColumnBatch> {
        Ok(ColumnBatch::from_table(
            &self.scan_project(table, predicate, projection)?,
        ))
    }

    /// Remote cardinality estimate (row count) for optimizer use.
    fn estimate_rows(&self, table: &str) -> FedResult<usize>;

    /// ANALYZE support: collect full optimizer statistics (row count,
    /// per-column NDV, null fraction, min/max) for a remote table. The
    /// default ships the whole table across the wrapper once and profiles
    /// it on the FDBS side; a wrapper whose remote end can compute
    /// statistics natively should override this. Foreign statistics carry
    /// no mutation epoch — they stay valid until the next ANALYZE.
    fn collect_statistics(&self, table: &str) -> FedResult<TableStatistics> {
        Ok(TableStatistics::from_table(
            &self.scan(table, &Predicate::True)?,
        ))
    }
}

/// Adapter exposing an embedded relstore database as a foreign SQL source.
pub struct RelstoreServer {
    name: String,
    db: Arc<Database>,
}

impl RelstoreServer {
    pub fn new(name: impl Into<String>, db: Arc<Database>) -> RelstoreServer {
        RelstoreServer {
            name: name.into(),
            db,
        }
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }
}

impl ForeignServer for RelstoreServer {
    fn name(&self) -> &str {
        &self.name
    }

    fn table_schema(&self, table: &str) -> FedResult<SchemaRef> {
        self.db.table_schema(table)
    }

    fn scan(&self, table: &str, predicate: &Predicate) -> FedResult<Table> {
        self.db.scan(table, predicate)
    }

    fn scan_project(
        &self,
        table: &str,
        predicate: &Predicate,
        projection: Option<&[usize]>,
    ) -> FedResult<Table> {
        // Push the projection all the way into the remote storage engine:
        // the pruned columns are never cloned out of the heap table.
        self.db.scan_project(table, predicate, projection)
    }

    fn scan_project_columnar(
        &self,
        table: &str,
        predicate: &Predicate,
        projection: Option<&[usize]>,
    ) -> FedResult<ColumnBatch> {
        // Column-native end to end: storage appends matching values
        // straight into typed vectors; no row is built on either side.
        self.db.scan_project_columnar(table, predicate, projection)
    }

    fn estimate_rows(&self, table: &str) -> FedResult<usize> {
        Ok(self.db.table_stats(table)?.row_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwf_types::{DataType, Row, Schema, Value};

    fn server() -> RelstoreServer {
        let db = Database::new("remote");
        db.create_table(
            "Parts",
            Arc::new(Schema::of(&[
                ("PartNo", DataType::Int),
                ("Name", DataType::Varchar),
            ])),
        )
        .unwrap();
        db.insert("Parts", Row::new(vec![Value::Int(1), Value::str("bolt")]))
            .unwrap();
        db.insert("Parts", Row::new(vec![Value::Int(2), Value::str("nut")]))
            .unwrap();
        RelstoreServer::new("erp", Arc::new(db))
    }

    #[test]
    fn pushdown_scan() {
        let s = server();
        let t = s.scan("Parts", &Predicate::eq(0, 2)).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.value(0, "Name"), Some(&Value::str("nut")));
    }

    #[test]
    fn pushdown_scan_with_projection() {
        let s = server();
        // Predicate numbers the full layout; only Name comes back.
        let t = s
            .scan_project("Parts", &Predicate::eq(0, 2), Some(&[1]))
            .unwrap();
        assert_eq!(t.schema().len(), 1);
        assert_eq!(t.value(0, "Name"), Some(&Value::str("nut")));
    }

    #[test]
    fn default_scan_project_prunes_wrapper_side() {
        // A wrapper that only implements `scan` still honors projections
        // through the default FDBS-side pruning.
        struct Plain(RelstoreServer);
        impl ForeignServer for Plain {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn table_schema(&self, table: &str) -> FedResult<SchemaRef> {
                self.0.table_schema(table)
            }
            fn scan(&self, table: &str, predicate: &Predicate) -> FedResult<Table> {
                self.0.scan(table, predicate)
            }
            fn estimate_rows(&self, table: &str) -> FedResult<usize> {
                self.0.estimate_rows(table)
            }
        }
        let s = Plain(server());
        let t = s
            .scan_project("Parts", &Predicate::True, Some(&[1]))
            .unwrap();
        assert_eq!(t.schema().len(), 1);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, "Name"), Some(&Value::str("bolt")));
    }

    #[test]
    fn columnar_boundary_matches_row_boundary() {
        let s = server();
        let rows = s
            .scan_project("Parts", &Predicate::True, Some(&[1]))
            .unwrap();
        let cols = s
            .scan_project_columnar("Parts", &Predicate::True, Some(&[1]))
            .unwrap();
        assert_eq!(cols.to_rows(), rows.rows().to_vec());
        // The default (row-adapting) implementation agrees too.
        struct Plain(RelstoreServer);
        impl ForeignServer for Plain {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn table_schema(&self, table: &str) -> FedResult<SchemaRef> {
                self.0.table_schema(table)
            }
            fn scan(&self, table: &str, predicate: &Predicate) -> FedResult<Table> {
                self.0.scan(table, predicate)
            }
            fn estimate_rows(&self, table: &str) -> FedResult<usize> {
                self.0.estimate_rows(table)
            }
        }
        let p = Plain(server());
        let cols = p
            .scan_project_columnar("Parts", &Predicate::True, Some(&[1]))
            .unwrap();
        assert_eq!(cols.to_rows(), rows.rows().to_vec());
    }

    #[test]
    fn schema_and_estimate() {
        let s = server();
        assert_eq!(s.table_schema("Parts").unwrap().len(), 2);
        assert_eq!(s.estimate_rows("Parts").unwrap(), 2);
        assert!(s.table_schema("Nope").is_err());
    }
}
