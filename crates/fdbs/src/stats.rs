//! ANALYZE-style optimizer statistics.
//!
//! A statistics pass scans a table once and derives, per column: the
//! number of distinct non-null values (NDV), the null fraction, and the
//! min/max. The catalog stores one [`TableStatistics`] per analyzed table
//! ([`crate::Catalog::analyze`]); for local relstore tables the entry
//! remembers the mutation epoch it was collected at and is invalidated
//! when the table mutates past it, for foreign tables (no epoch across
//! the wrapper boundary) it stays valid until the next ANALYZE.
//!
//! The selectivity model is the textbook one (System R lineage):
//!
//! * `col = lit` → `(1 - null_fraction) / ndv`
//! * `col < lit` (numeric) → interpolation of `lit` into `[min, max]`,
//!   scaled by `(1 - null_fraction)`
//! * `col IS NULL` → `null_fraction`
//! * `a AND b` → `s(a) · s(b)` (independence)
//! * `a OR b` → `s(a) + s(b) - s(a)·s(b)`
//! * `NOT a` → `1 - s(a)`
//! * join `R ⋈ S` on `a = b` → `|R|·|S| / max(ndv(a), ndv(b))`
//!
//! Without statistics the estimator falls back to live row counts
//! (relstore [`fedwf_relstore::TableStats`], SQL/MED
//! [`crate::ForeignServer::estimate_rows`]) and the default selectivities
//! below.

use std::collections::HashSet;

use fedwf_relstore::{CmpOp, Predicate};
use fedwf_types::{Table, TxnId, Value, ValueKey};

/// Default selectivity of an equality predicate when no statistics exist.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Default selectivity of a range predicate when no statistics exist or
/// the bound cannot be interpolated.
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default null fraction when no statistics exist.
pub const DEFAULT_NULL_FRACTION: f64 = 0.1;

/// Per-column statistics from one collection pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Smallest non-null value (by [`Value::index_cmp`]).
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
}

/// Statistics for one table: row count plus per-column [`ColumnStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct TableStatistics {
    pub row_count: usize,
    pub columns: Vec<ColumnStats>,
    /// Mutation epoch of the source table at collection time. `Some` for
    /// local relstore tables (stale once the table mutates past it);
    /// `None` for foreign tables, which expose no epoch through the
    /// wrapper — those stay valid until the next ANALYZE.
    pub epoch: Option<TxnId>,
}

impl TableStatistics {
    /// Collect statistics from a materialized table in one pass.
    pub fn from_table(table: &Table) -> TableStatistics {
        let width = table.schema().len();
        let mut distinct: Vec<HashSet<ValueKey>> = (0..width).map(|_| HashSet::new()).collect();
        let mut nulls = vec![0usize; width];
        let mut mins: Vec<Option<Value>> = vec![None; width];
        let mut maxs: Vec<Option<Value>> = vec![None; width];
        for row in table.rows() {
            for (c, v) in row.values().iter().enumerate().take(width) {
                if v.is_null() {
                    nulls[c] += 1;
                    continue;
                }
                distinct[c].insert(v.group_key());
                match &mins[c] {
                    Some(m) if m.index_cmp(v) != std::cmp::Ordering::Greater => {}
                    _ => mins[c] = Some(v.clone()),
                }
                match &maxs[c] {
                    Some(m) if m.index_cmp(v) != std::cmp::Ordering::Less => {}
                    _ => maxs[c] = Some(v.clone()),
                }
            }
        }
        TableStatistics {
            row_count: table.row_count(),
            columns: (0..width)
                .map(|c| ColumnStats {
                    ndv: distinct[c].len(),
                    null_count: nulls[c],
                    min: mins[c].take(),
                    max: maxs[c].take(),
                })
                .collect(),
            epoch: None,
        }
    }

    /// The epoch-stamped variant for local tables.
    pub fn with_epoch(mut self, epoch: TxnId) -> TableStatistics {
        self.epoch = Some(epoch);
        self
    }

    /// Fraction of NULLs in `column`, [`DEFAULT_NULL_FRACTION`] when the
    /// column is unknown or the table is empty.
    pub fn null_fraction(&self, column: usize) -> f64 {
        match self.columns.get(column) {
            Some(c) if self.row_count > 0 => c.null_count as f64 / self.row_count as f64,
            _ => DEFAULT_NULL_FRACTION,
        }
    }

    /// NDV of `column`, `None` when the column is unknown or empty.
    pub fn ndv(&self, column: usize) -> Option<usize> {
        self.columns.get(column).map(|c| c.ndv).filter(|&n| n > 0)
    }

    /// Selectivity of `column = <literal>`.
    pub fn eq_selectivity(&self, column: usize) -> f64 {
        match self.ndv(column) {
            Some(ndv) => clamp01((1.0 - self.null_fraction(column)) / ndv as f64),
            None => DEFAULT_EQ_SELECTIVITY,
        }
    }

    /// Selectivity of `column <op> value` via min/max interpolation for
    /// numeric bounds; [`DEFAULT_RANGE_SELECTIVITY`] otherwise.
    pub fn cmp_selectivity(&self, column: usize, op: CmpOp, value: &Value) -> f64 {
        match op {
            CmpOp::Eq => return self.eq_selectivity(column),
            CmpOp::NotEq => return clamp01(1.0 - self.eq_selectivity(column)),
            _ => {}
        }
        let Some(col) = self.columns.get(column) else {
            return DEFAULT_RANGE_SELECTIVITY;
        };
        let (Some(min), Some(max), Some(v)) = (
            col.min.as_ref().and_then(Value::as_f64),
            col.max.as_ref().and_then(Value::as_f64),
            value.as_f64(),
        ) else {
            return DEFAULT_RANGE_SELECTIVITY;
        };
        let notnull = 1.0 - self.null_fraction(column);
        if max <= min {
            // Single-point domain: the range either covers it or not.
            let covers = op.evaluate(min.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Equal));
            return clamp01(if covers { notnull } else { 0.0 });
        }
        let frac_below = clamp01((v - min) / (max - min));
        let s = match op {
            CmpOp::Lt | CmpOp::LtEq => frac_below,
            CmpOp::Gt | CmpOp::GtEq => 1.0 - frac_below,
            CmpOp::Eq | CmpOp::NotEq => unreachable!("handled above"),
        };
        clamp01(s * notnull)
    }

    /// Selectivity of `column IS [NOT] NULL`.
    pub fn null_selectivity(&self, column: usize, negated: bool) -> f64 {
        let nf = self.null_fraction(column);
        clamp01(if negated { 1.0 - nf } else { nf })
    }
}

/// Selectivity of a storage predicate against (optional) statistics.
pub fn predicate_selectivity(pred: &Predicate, stats: Option<&TableStatistics>) -> f64 {
    match pred {
        Predicate::True => 1.0,
        Predicate::Compare { column, op, value } => match stats {
            Some(s) => s.cmp_selectivity(*column, *op, value),
            None => match op {
                CmpOp::Eq => DEFAULT_EQ_SELECTIVITY,
                CmpOp::NotEq => 1.0 - DEFAULT_EQ_SELECTIVITY,
                _ => DEFAULT_RANGE_SELECTIVITY,
            },
        },
        Predicate::IsNull(column) => match stats {
            Some(s) => s.null_selectivity(*column, false),
            None => DEFAULT_NULL_FRACTION,
        },
        Predicate::IsNotNull(column) => match stats {
            Some(s) => s.null_selectivity(*column, true),
            None => 1.0 - DEFAULT_NULL_FRACTION,
        },
        Predicate::And(a, b) => predicate_selectivity(a, stats) * predicate_selectivity(b, stats),
        Predicate::Or(a, b) => {
            let (sa, sb) = (
                predicate_selectivity(a, stats),
                predicate_selectivity(b, stats),
            );
            clamp01(sa + sb - sa * sb)
        }
        Predicate::Not(p) => clamp01(1.0 - predicate_selectivity(p, stats)),
    }
}

/// Equi-join output estimate: `|R|·|S| / max(ndv_left, ndv_right)`.
/// Missing NDVs fall back to the smaller side's row count (primary-key
/// flavoured guess).
pub fn join_cardinality(
    left_rows: f64,
    right_rows: f64,
    ndv_left: Option<usize>,
    ndv_right: Option<usize>,
) -> f64 {
    let ndv = match (ndv_left, ndv_right) {
        (Some(a), Some(b)) => a.max(b) as f64,
        (Some(a), None) => (a as f64).max(right_rows),
        (None, Some(b)) => (b as f64).max(left_rows),
        (None, None) => left_rows.max(right_rows).max(1.0),
    };
    (left_rows * right_rows / ndv.max(1.0)).max(0.0)
}

pub(crate) fn clamp01(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use fedwf_types::{DataType, Row, Schema};

    fn sample() -> Table {
        let schema = Arc::new(Schema::of(&[
            ("K", DataType::Int),
            ("V", DataType::Int),
            ("S", DataType::Varchar),
        ]));
        let mut t = Table::new(schema);
        for k in 0..100 {
            let v = if k % 10 == 0 {
                Value::Null
            } else {
                Value::Int(k % 5)
            };
            t.push_unchecked(Row::new(vec![
                Value::Int(k),
                v,
                Value::str(format!("s{}", k % 7)),
            ]));
        }
        t
    }

    #[test]
    fn collection_counts_ndv_nulls_minmax() {
        let s = TableStatistics::from_table(&sample());
        assert_eq!(s.row_count, 100);
        assert_eq!(s.columns[0].ndv, 100);
        assert_eq!(s.columns[0].null_count, 0);
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(99)));
        assert_eq!(s.columns[1].ndv, 5); // k%5 for k not divisible by 10: 0..=4
        assert_eq!(s.columns[1].null_count, 10);
        assert_eq!(s.columns[2].ndv, 7);
    }

    #[test]
    fn equality_selectivity_uses_ndv_and_nulls() {
        let s = TableStatistics::from_table(&sample());
        // Unique column: 1/100.
        assert!((s.eq_selectivity(0) - 0.01).abs() < 1e-9);
        // 5 distinct non-null over 90% non-null rows: 0.9/5.
        assert!((s.eq_selectivity(1) - 0.18).abs() < 1e-9);
        // Unknown column falls back to the default.
        assert_eq!(s.eq_selectivity(9), DEFAULT_EQ_SELECTIVITY);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let s = TableStatistics::from_table(&sample());
        // K < 25 over [0, 99] ≈ 25/99.
        let sel = s.cmp_selectivity(0, CmpOp::Lt, &Value::Int(25));
        assert!((sel - 25.0 / 99.0).abs() < 1e-9);
        // Out-of-range bounds clamp.
        assert_eq!(s.cmp_selectivity(0, CmpOp::Lt, &Value::Int(-5)), 0.0);
        assert_eq!(s.cmp_selectivity(0, CmpOp::Gt, &Value::Int(-5)), 1.0);
        // Strings fall back to the default.
        assert_eq!(
            s.cmp_selectivity(2, CmpOp::Lt, &Value::str("x")),
            DEFAULT_RANGE_SELECTIVITY
        );
    }

    #[test]
    fn null_selectivity_is_the_null_fraction() {
        let s = TableStatistics::from_table(&sample());
        assert!((s.null_selectivity(1, false) - 0.1).abs() < 1e-9);
        assert!((s.null_selectivity(1, true) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn predicate_selectivity_composes() {
        let s = TableStatistics::from_table(&sample());
        let p = Predicate::eq(0, 1).and(Predicate::IsNull(1));
        let sel = predicate_selectivity(&p, Some(&s));
        assert!((sel - 0.01 * 0.1).abs() < 1e-9);
        let q = Predicate::eq(0, 1).or(Predicate::eq(0, 2));
        let sq = predicate_selectivity(&q, Some(&s));
        assert!((sq - (0.02 - 0.0001)).abs() < 1e-9);
        // Without stats, defaults apply.
        assert_eq!(
            predicate_selectivity(&Predicate::eq(0, 1), None),
            DEFAULT_EQ_SELECTIVITY
        );
    }

    #[test]
    fn join_cardinality_divides_by_larger_ndv() {
        // 1000 x 100 on a key with ndv 100 vs 50 → 1000*100/100.
        let est = join_cardinality(1000.0, 100.0, Some(100), Some(50));
        assert!((est - 1000.0).abs() < 1e-9);
        // Missing ndv falls back to the other side's rows.
        let est = join_cardinality(1000.0, 100.0, None, None);
        assert!((est - 100.0).abs() < 1e-9);
    }
}
