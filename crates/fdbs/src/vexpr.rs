//! Vectorized expression evaluation over [`ColumnBatch`]es.
//!
//! [`eval_vcol`] evaluates a [`BoundExpr`] for every row of a batch at
//! once, returning either a constant (no per-row work at all) or one typed
//! column vector. Numeric comparisons run as tight loops over the raw
//! `i32`/`i64`/`f64` slices; everything else goes through the same
//! per-operand helpers the row evaluator uses (`apply_binary_nonlogical`,
//! `apply_logical`, `apply_not`, …), so scalar semantics are shared by
//! construction.
//!
//! Error discipline: the vectorized kernels are *eager* — they evaluate
//! both sides of AND/OR and whole columns where the row evaluator would
//! short-circuit. Wherever that could observably diverge (an error the
//! lazy path never hits), the kernel reports an error and the caller
//! re-runs the batch through the row-at-a-time reference path, whose
//! outcome — success or failure — is authoritative. A vectorized error is
//! therefore never surfaced to the user; it only ever demotes a batch.

use std::sync::Arc;

use fedwf_types::{
    cast_value, ColumnBatch, ColumnBuilder, ColumnData, ColumnVec, FedError, FedResult, Value,
};

use crate::expr::{
    apply_binary_nonlogical, apply_logical, apply_neg, apply_not, eval_scalar, BinaryOp, BoundExpr,
};

/// A vectorized evaluation result: one value for every row of the batch.
/// Constants stay constants so `lit > lit` or a parameter comparison costs
/// nothing per row.
pub(crate) enum VCol {
    Const(Value),
    Col(Arc<ColumnVec>),
}

impl VCol {
    /// The value at row `i` (constants ignore `i`).
    pub(crate) fn value_at(&self, i: usize) -> Value {
        match self {
            VCol::Const(v) => v.clone(),
            VCol::Col(c) => c.value_at(i),
        }
    }
}

/// A numeric view for the comparison fast path: `get(i)` yields the row's
/// value as `f64` (`None` for NULL), matching `sql_cmp`'s numeric rule
/// exactly — it compares any two numerics through `as_f64`.
enum NumView<'a> {
    Const(Option<f64>),
    Int(&'a ColumnVec, &'a [i32]),
    Big(&'a ColumnVec, &'a [i64]),
    Dbl(&'a ColumnVec, &'a [f64]),
}

impl<'a> NumView<'a> {
    fn of(v: &'a VCol) -> Option<NumView<'a>> {
        match v {
            VCol::Const(Value::Null) => Some(NumView::Const(None)),
            VCol::Const(c @ (Value::Int(_) | Value::BigInt(_) | Value::Double(_))) => {
                Some(NumView::Const(Some(c.as_f64().expect("numeric constant"))))
            }
            VCol::Const(_) => None,
            VCol::Col(c) => match &c.data {
                ColumnData::Int(xs) => Some(NumView::Int(c, xs)),
                ColumnData::BigInt(xs) => Some(NumView::Big(c, xs)),
                ColumnData::Double(xs) => Some(NumView::Dbl(c, xs)),
                _ => None,
            },
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Option<f64> {
        match self {
            NumView::Const(v) => *v,
            NumView::Int(c, xs) => c.is_valid(i).then(|| xs[i] as f64),
            NumView::Big(c, xs) => c.is_valid(i).then(|| xs[i] as f64),
            NumView::Dbl(c, xs) => c.is_valid(i).then(|| xs[i]),
        }
    }
}

#[inline]
fn cmp_holds(op: BinaryOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinaryOp::Eq => ord == Equal,
        BinaryOp::NotEq => ord != Equal,
        BinaryOp::Lt => ord == Less,
        BinaryOp::LtEq => ord != Greater,
        BinaryOp::Gt => ord == Greater,
        BinaryOp::GtEq => ord != Less,
        _ => unreachable!("cmp_holds is only called for comparisons"),
    }
}

/// Numeric comparison kernel. `None` when either side has no numeric view
/// (the generic per-row loop handles it); `Some(Err)` when a NaN makes the
/// comparison undefined — the caller falls back to the row path, which
/// raises the same "cannot compare" error at the same first row.
fn cmp_kernel(op: BinaryOp, l: &VCol, r: &VCol, len: usize) -> Option<FedResult<VCol>> {
    let lv = NumView::of(l)?;
    let rv = NumView::of(r)?;
    let mut b = ColumnBuilder::with_capacity(Some(fedwf_types::DataType::Boolean), len);
    for i in 0..len {
        match (lv.get(i), rv.get(i)) {
            (Some(x), Some(y)) => match x.partial_cmp(&y) {
                Some(ord) => b.push_bool(cmp_holds(op, ord)),
                None => {
                    return Some(Err(FedError::execution(format!(
                        "cannot compare {x} with {y}"
                    ))))
                }
            },
            _ => b.push_null(),
        }
    }
    Some(Ok(VCol::Col(Arc::new(b.finish()))))
}

/// Apply a fallible scalar function over one evaluated operand column.
fn map_unary(
    len: usize,
    v: &VCol,
    dt: Option<fedwf_types::DataType>,
    f: impl Fn(&Value) -> FedResult<Value>,
) -> FedResult<VCol> {
    if let VCol::Const(c) = v {
        return f(c).map(VCol::Const);
    }
    let mut b = ColumnBuilder::with_capacity(dt, len);
    for i in 0..len {
        b.push(&f(&v.value_at(i))?);
    }
    Ok(VCol::Col(Arc::new(b.finish())))
}

/// Apply a fallible scalar function over two evaluated operand columns.
fn map_binary(
    len: usize,
    l: &VCol,
    r: &VCol,
    dt: Option<fedwf_types::DataType>,
    f: impl Fn(&Value, &Value) -> FedResult<Value>,
) -> FedResult<VCol> {
    if let (VCol::Const(a), VCol::Const(b)) = (l, r) {
        return f(a, b).map(VCol::Const);
    }
    let mut b = ColumnBuilder::with_capacity(dt, len);
    for i in 0..len {
        b.push(&f(&l.value_at(i), &r.value_at(i))?);
    }
    Ok(VCol::Col(Arc::new(b.finish())))
}

/// Evaluate `e` over every row of `batch`.
pub(crate) fn eval_vcol(e: &BoundExpr, batch: &ColumnBatch, params: &[Value]) -> FedResult<VCol> {
    let len = batch.len();
    match e {
        BoundExpr::Column { index, .. } => {
            batch.column(*index).cloned().map(VCol::Col).ok_or_else(|| {
                FedError::execution(format!("column index {index} out of row bounds"))
            })
        }
        BoundExpr::Param { index, .. } => {
            params.get(*index).cloned().map(VCol::Const).ok_or_else(|| {
                FedError::execution(format!("parameter index {index} out of bounds"))
            })
        }
        BoundExpr::Literal(v) => Ok(VCol::Const(v.clone())),
        BoundExpr::Cast { input, to } => {
            let v = eval_vcol(input, batch, params)?;
            map_unary(len, &v, Some(*to), |x| Ok(cast_value(x, *to)?))
        }
        BoundExpr::Not(inner) => {
            let v = eval_vcol(inner, batch, params)?;
            map_unary(len, &v, e.data_type(), apply_not)
        }
        BoundExpr::Neg(inner) => {
            let v = eval_vcol(inner, batch, params)?;
            map_unary(len, &v, e.data_type(), apply_neg)
        }
        BoundExpr::IsNull { input, negated } => {
            let v = eval_vcol(input, batch, params)?;
            let negated = *negated;
            map_unary(len, &v, Some(fedwf_types::DataType::Boolean), |x| {
                Ok(Value::Boolean(x.is_null() != negated))
            })
        }
        BoundExpr::Scalar { f, args } => {
            let cols: Vec<VCol> = args
                .iter()
                .map(|a| eval_vcol(a, batch, params))
                .collect::<FedResult<_>>()?;
            if cols.iter().all(|c| matches!(c, VCol::Const(_))) {
                let vals: Vec<Value> = cols.iter().map(|c| c.value_at(0)).collect();
                return eval_scalar(*f, &vals).map(VCol::Const);
            }
            let mut b = ColumnBuilder::with_capacity(e.data_type(), len);
            let mut vals = Vec::with_capacity(cols.len());
            for i in 0..len {
                vals.clear();
                vals.extend(cols.iter().map(|c| c.value_at(i)));
                b.push(&eval_scalar(*f, &vals)?);
            }
            Ok(VCol::Col(Arc::new(b.finish())))
        }
        BoundExpr::Binary { left, op, right } => {
            let l = eval_vcol(left, batch, params)?;
            let r = eval_vcol(right, batch, params)?;
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    map_binary(len, &l, &r, Some(fedwf_types::DataType::Boolean), |a, b| {
                        apply_logical(*op, a, b)
                    })
                }
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => match cmp_kernel(*op, &l, &r, len) {
                    Some(res) => res,
                    None => map_binary(len, &l, &r, e.data_type(), |a, b| {
                        apply_binary_nonlogical(*op, a, b)
                    }),
                },
                _ => map_binary(len, &l, &r, e.data_type(), |a, b| {
                    apply_binary_nonlogical(*op, a, b)
                }),
            }
        }
    }
}

/// Evaluate a predicate over the batch into a selection vector: the row
/// indexes where it is definitely TRUE (3VL — NULL and FALSE both drop).
pub(crate) fn eval_filter_mask(
    e: &BoundExpr,
    batch: &ColumnBatch,
    params: &[Value],
) -> FedResult<Vec<u32>> {
    // Fused fast path for the common shape `col <cmp> expr` over numerics:
    // build the selection vector straight from the comparison, skipping
    // the intermediate Boolean column entirely. NULL on either side drops
    // the row (3VL), NaN falls back through the error path.
    if let BoundExpr::Binary { left, op, right } = e {
        if matches!(
            op,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        ) {
            let l = eval_vcol(left, batch, params)?;
            let r = eval_vcol(right, batch, params)?;
            if let (Some(lv), Some(rv)) = (NumView::of(&l), NumView::of(&r)) {
                let len = batch.len();
                // Hottest shape of all: fully-valid INT column against a
                // non-NaN numeric constant. Walk the raw `i32` slice with
                // no per-row validity reads or Option boxing; `i32 → f64`
                // is exact, so this is still `sql_cmp`'s numeric rule.
                if let (NumView::Int(c, xs), NumView::Const(Some(y))) = (&lv, &rv) {
                    if !y.is_nan() && c.all_valid(len) {
                        let mut sel = Vec::with_capacity(len);
                        for (i, &x) in xs.iter().enumerate().take(len) {
                            let ord = (x as f64).partial_cmp(y).expect("neither side is NaN");
                            if cmp_holds(*op, ord) {
                                sel.push(i as u32);
                            }
                        }
                        return Ok(sel);
                    }
                }
                let mut sel = Vec::with_capacity(len);
                for i in 0..batch.len() {
                    if let (Some(x), Some(y)) = (lv.get(i), rv.get(i)) {
                        match x.partial_cmp(&y) {
                            Some(ord) => {
                                if cmp_holds(*op, ord) {
                                    sel.push(i as u32);
                                }
                            }
                            None => {
                                return Err(FedError::execution(format!(
                                    "cannot compare {x} with {y}"
                                )))
                            }
                        }
                    }
                }
                return Ok(sel);
            }
        }
    }
    let v = eval_vcol(e, batch, params)?;
    let len = batch.len();
    match v {
        VCol::Const(Value::Boolean(true)) => Ok((0..len as u32).collect()),
        VCol::Const(Value::Boolean(false) | Value::Null) => Ok(Vec::new()),
        VCol::Const(other) => Err(FedError::execution(format!(
            "predicate evaluated to non-boolean {other}"
        ))),
        VCol::Col(c) => {
            let mut sel = Vec::new();
            match &c.data {
                ColumnData::Boolean(bits) => {
                    for (i, keep) in bits.iter().enumerate().take(len) {
                        if *keep && c.is_valid(i) {
                            sel.push(i as u32);
                        }
                    }
                }
                _ => {
                    for i in 0..len {
                        if matches!(c.value_at(i), Value::Boolean(true)) {
                            sel.push(i as u32);
                        }
                    }
                }
            }
            Ok(sel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwf_types::{DataType, Row};

    fn col(i: usize, dt: DataType) -> BoundExpr {
        BoundExpr::Column {
            index: i,
            data_type: dt,
        }
    }

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn bin(l: BoundExpr, op: BinaryOp, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    fn batch() -> ColumnBatch {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Double(1.5), Value::str("a")]),
            Row::new(vec![Value::Int(5), Value::Null, Value::str("")]),
            Row::new(vec![Value::Null, Value::Double(-2.0), Value::Null]),
            Row::new(vec![Value::Int(9), Value::Double(9.0), Value::str("zz")]),
        ];
        ColumnBatch::from_rows(&[DataType::Int, DataType::Double, DataType::Varchar], &rows)
    }

    /// Every expression must agree with the row evaluator value-for-value.
    fn assert_matches_row_eval(e: &BoundExpr) {
        let b = batch();
        let v = eval_vcol(e, &b, &[]).unwrap();
        for (i, row) in b.to_rows().iter().enumerate() {
            assert_eq!(
                v.value_at(i),
                e.eval(row.values(), &[]).unwrap(),
                "row {i} of {e:?}"
            );
        }
    }

    #[test]
    fn kernels_match_row_eval() {
        let exprs = [
            bin(col(0, DataType::Int), BinaryOp::Gt, lit(2)),
            bin(
                col(0, DataType::Int),
                BinaryOp::LtEq,
                col(1, DataType::Double),
            ),
            bin(col(1, DataType::Double), BinaryOp::Eq, lit(1.5)),
            bin(col(2, DataType::Varchar), BinaryOp::Eq, lit("a")),
            bin(
                bin(col(0, DataType::Int), BinaryOp::Gt, lit(0)),
                BinaryOp::And,
                bin(col(1, DataType::Double), BinaryOp::Lt, lit(5.0)),
            ),
            bin(col(0, DataType::Int), BinaryOp::Add, lit(10)),
            BoundExpr::Not(Box::new(bin(col(0, DataType::Int), BinaryOp::Gt, lit(2)))),
            BoundExpr::Neg(Box::new(col(1, DataType::Double))),
            BoundExpr::IsNull {
                input: Box::new(col(2, DataType::Varchar)),
                negated: false,
            },
            BoundExpr::Cast {
                input: Box::new(col(0, DataType::Int)),
                to: DataType::BigInt,
            },
            BoundExpr::Scalar {
                f: crate::expr::ScalarFn::Upper,
                args: vec![col(2, DataType::Varchar)],
            },
            bin(col(2, DataType::Varchar), BinaryOp::Concat, lit("!")),
            lit(42),
        ];
        for e in &exprs {
            assert_matches_row_eval(e);
        }
    }

    #[test]
    fn filter_mask_is_three_valued() {
        let b = batch();
        // col0 > 2: row0 false, row1 true, row2 NULL (drops), row3 true.
        let e = bin(col(0, DataType::Int), BinaryOp::Gt, lit(2));
        assert_eq!(eval_filter_mask(&e, &b, &[]).unwrap(), vec![1, 3]);
        // Constant predicates collapse to all-or-nothing.
        assert_eq!(
            eval_filter_mask(&lit(true), &b, &[]).unwrap(),
            vec![0, 1, 2, 3]
        );
        assert!(eval_filter_mask(&lit(Value::Null), &b, &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nan_comparison_reports_error_for_fallback() {
        let b = batch();
        let e = bin(col(1, DataType::Double), BinaryOp::Lt, lit(f64::NAN));
        assert!(eval_vcol(&e, &b, &[]).is_err());
    }

    #[test]
    fn type_error_reports_for_fallback() {
        let b = batch();
        // Varchar vs Int comparison errors on the generic path, like the
        // row evaluator does.
        let e = bin(col(2, DataType::Varchar), BinaryOp::Gt, lit(1));
        assert!(eval_vcol(&e, &b, &[]).is_err());
    }
}
