//! # fedwf-fdbs
//!
//! The federated database system — the role IBM DB2 UDB v7.1 plays in the
//! paper. It owns:
//!
//! * a **catalog** of local tables (backed by [`fedwf_relstore`]), foreign
//!   tables on remote SQL sources (federation with predicate pushdown), and
//!   **user-defined table functions** in three flavours: native (closures —
//!   the A-UDTFs and "Java" I-UDTFs), SQL-bodied (the paper's
//!   `CREATE FUNCTION ... LANGUAGE SQL RETURN SELECT ...` I-UDTFs), and
//!   anything a SQL/MED-style [`sqlmed::ForeignServer`] provides;
//! * a **binder/planner** implementing DB2's left-to-right lateral FROM
//!   semantics: a table function's arguments may reference correlation
//!   names introduced to its left (never to its right), which is how the
//!   paper encodes the precedence structure among local function calls;
//! * an **optimizer** performing predicate classification and pushdown
//!   (into local scans, foreign scans, and to the earliest lateral position
//!   where a conjunct becomes evaluable) and constant folding;
//! * a **Volcano-style executor** that books virtual costs: plan
//!   compilation (with a plan cache — repeated statements are cheaper, one
//!   of Section 4's observations), predicate evaluation, row output, and
//!   the *join-with-selection* composition cost that makes the UDTF
//!   architecture's independent case slower than its sequential case
//!   (the contrast of Section 4);
//! * **UDTF charge specs**: each registered UDTF carries the start/finish
//!   cost sequence its architecture implies (I-UDTF vs A-UDTF vs the
//!   WfMS-connecting UDTF), so a single executor reproduces both columns of
//!   the paper's Fig. 6.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use fedwf_fdbs::{Fdbs, Udtf};
//! use fedwf_sim::{CostModel, Meter};
//! use fedwf_types::{DataType, Ident, Schema, Table, Value};
//!
//! let fdbs = Fdbs::new(CostModel::zero());
//! let mut meter = Meter::new();
//!
//! // A local table plus a table function, joined laterally.
//! fdbs.execute("CREATE TABLE Suppliers (SupplierNo INT, Name VARCHAR)", &mut meter)?;
//! fdbs.execute("INSERT INTO Suppliers VALUES (1234, 'Acme')", &mut meter)?;
//! fdbs.register_udtf(Udtf::native(
//!     "GetQuality",
//!     vec![(Ident::new("SupplierNo"), DataType::Int)],
//!     Arc::new(Schema::of(&[("Qual", DataType::Int)])),
//!     |_args, _meter| Ok(Table::scalar("Qual", Value::Int(93))),
//! ))?;
//!
//! let result = fdbs.execute(
//!     "SELECT S.Name, GQ.Qual \
//!      FROM Suppliers AS S, TABLE (GetQuality(S.SupplierNo)) AS GQ \
//!      WHERE S.SupplierNo = 1234",
//!     &mut meter,
//! )?;
//! assert_eq!(result.value(0, "Qual"), Some(&Value::Int(93)));
//! # Ok::<(), fedwf_types::FedError>(())
//! ```

pub mod catalog;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod optimizer;
pub mod plan;
pub mod sqlmed;
pub mod stats;
pub mod udtf;
pub(crate) mod vexec;
pub(crate) mod vexpr;

pub use catalog::Catalog;
pub use engine::{ExecOptions, Fdbs};
pub use exec::{execute_plan_with_mode, ExecMode};
pub use expr::BoundExpr;
pub use optimizer::PlannerMode;
pub use plan::{JoinKey, LogicalPlan, Plan, PlanBuilder};
pub use sqlmed::{ForeignServer, RelstoreServer};
pub use stats::{ColumnStats, TableStatistics};
pub use udtf::{ChargeItem, ChargeSpec, Udtf, UdtfKind};
