//! The plan executor: a join-aware pipeline over the lateral chain.
//!
//! Two strategies share this module. The default, [`ExecMode::JoinAware`],
//! composes each step with its prefix via a hash join on the equi-join keys
//! the binder extracted (`Plan::step_join_keys`), serves single-key local
//! scans with index point lookups, memoizes dependent UDTF invocations by
//! argument tuple, and uses hashed GROUP BY/DISTINCT. The retained
//! [`ExecMode::Naive`] path materializes the cross product and re-evaluates
//! the join conjuncts per composed row — the reference semantics the
//! equivalence suite checks the fast path against.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use fedwf_relstore::Predicate;
use fedwf_sim::{Component, CostModel, Meter};
use fedwf_types::{
    implicit_cast, DataType, FedError, FedResult, ResultExt, Row, SchemaRef, Table, Value, ValueKey,
};

use crate::engine::Fdbs;
use crate::expr::BoundExpr;
use crate::plan::{self as fedwf_plan, FromStep, JoinKey, Plan};
use crate::udtf::{Udtf, UdtfKind};

/// Which executor strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Hash joins on extracted equi-join keys, index probes, dependent-UDTF
    /// memoization, hashed grouping/DISTINCT.
    JoinAware,
    /// Cross product + per-row predicate re-evaluation, linear group
    /// lookup. Kept as the reference path for equivalence testing and the
    /// E13 scaling comparison.
    Naive,
}

/// Execute a bound plan against the engine's catalog, booking executor
/// costs to `meter`. `params` supplies the plan's parameter slots in order.
/// Uses the engine's configured [`ExecMode`].
pub fn execute_plan(
    fdbs: &Fdbs,
    plan: &Plan,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    execute_plan_with_mode(fdbs, plan, params, meter, fdbs.exec_mode())
}

/// [`execute_plan`] with an explicit strategy.
pub fn execute_plan_with_mode(
    fdbs: &Fdbs,
    plan: &Plan,
    params: &[Value],
    meter: &mut Meter,
    mode: ExecMode,
) -> FedResult<Table> {
    if params.len() != plan.params.len() {
        return Err(FedError::execution(format!(
            "plan expects {} parameters, got {}",
            plan.params.len(),
            params.len()
        )));
    }
    let cost = fdbs.cost();

    // The lateral chain starts from a single empty row.
    let mut rows: Vec<Row> = vec![Row::empty()];
    for (i, step) in plan.steps.iter().enumerate() {
        let jk = plan.step_join_keys[i].as_ref();
        rows = execute_step(fdbs, step, i, jk, rows, params, meter, mode)
            .context(format!("evaluating FROM item {} ({step:?})", i + 1))?;
        if mode == ExecMode::Naive {
            // The naive path ignored the join keys during composition, so
            // their conjuncts apply here as an ordinary residual filter.
            if let Some(jk) = jk {
                rows = filter_rows(rows, &jk.residual, params, meter, cost.predicate_eval)?;
            }
        }
        if let Some(filter) = &plan.step_filters[i] {
            rows = filter_rows(rows, filter, params, meter, cost.predicate_eval)?;
        }
    }

    // Grouping/aggregation replaces the scalar projection entirely; its
    // ORDER BY keys index the aggregate *output* layout.
    if let Some(agg) = &plan.aggregate {
        let mut out = aggregate_rows(fdbs, plan, agg, &rows, params, meter, mode)?;
        if !plan.order_by.is_empty() {
            let sorted = sort_rows(out.into_rows(), &plan.order_by, params)?;
            out = table_from_rows(plan.out_schema.clone(), sorted);
        }
        if let Some(limit) = plan.limit {
            let rows: Vec<Row> = out.into_rows().into_iter().take(limit as usize).collect();
            out = table_from_rows(plan.out_schema.clone(), rows);
        }
        return Ok(out);
    }

    // ORDER BY is evaluated on the full (pre-projection) row layout, so it
    // may reference any FROM column, not just projected ones.
    if !plan.order_by.is_empty() {
        rows = sort_rows(rows, &plan.order_by, params)?;
    }

    // Projection.
    let mut out = Table::new(plan.out_schema.clone());
    for row in &rows {
        let values: Vec<Value> = plan
            .projection
            .iter()
            .map(|(e, _)| e.eval(row.values(), params))
            .collect::<FedResult<_>>()?;
        meter.charge(Component::Fdbs, "Produce result rows", cost.row_output);
        out.push_unchecked(Row::new(values));
    }

    // DISTINCT: hashed on the join-aware path, quadratic scan on the naive
    // reference path. Both keep first-appearance order and group by
    // `index_cmp` equality (`group_key` is hash-consistent with it).
    if plan.distinct {
        let mut deduped = Table::new(plan.out_schema.clone());
        match mode {
            ExecMode::JoinAware => {
                let mut seen: HashSet<Vec<ValueKey>> = HashSet::new();
                for row in out.into_rows() {
                    let key: Vec<ValueKey> = row.values().iter().map(Value::group_key).collect();
                    if seen.insert(key) {
                        deduped.push_unchecked(row);
                    }
                }
            }
            ExecMode::Naive => {
                let mut seen: Vec<Row> = Vec::new();
                for row in out.into_rows() {
                    let dup = seen.iter().any(|r| {
                        r.values()
                            .iter()
                            .zip(row.values())
                            .all(|(a, b)| a.index_cmp(b) == std::cmp::Ordering::Equal)
                    });
                    if !dup {
                        seen.push(row.clone());
                        deduped.push_unchecked(row);
                    }
                }
            }
        }
        out = deduped;
    }

    // LIMIT.
    if let Some(limit) = plan.limit {
        let rows: Vec<Row> = out.into_rows().into_iter().take(limit as usize).collect();
        out = table_from_rows(plan.out_schema.clone(), rows);
    }

    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn execute_step(
    fdbs: &Fdbs,
    step: &FromStep,
    position: usize,
    jk: Option<&JoinKey>,
    prefix: Vec<Row>,
    params: &[Value],
    meter: &mut Meter,
    mode: ExecMode,
) -> FedResult<Vec<Row>> {
    let cost = fdbs.cost();
    let jk = match mode {
        ExecMode::JoinAware => jk,
        ExecMode::Naive => None,
    };
    match step {
        FromStep::ScanLocal {
            table,
            pushdown,
            schema,
            ..
        } => {
            if let Some(jk) = jk {
                // A single integer-typed join key served by an index turns
                // the scan into point lookups, one per distinct probe value.
                // (DOUBLE keys fall back to the hash join: NaN would change
                // the naive path's error semantics under the storage
                // layer's silent 3VL comparison.)
                let indexable = jk.build.len() == 1
                    && schema.columns()[jk.build[0]].data_type != DataType::Double
                    && jk.probe[0].data_type() != Some(DataType::Double)
                    && fdbs
                        .catalog()
                        .local()
                        .index_serves(table.as_str(), &Predicate::eq(jk.build[0], Value::Null))?;
                if indexable {
                    return index_probe_join(
                        fdbs,
                        table.as_str(),
                        pushdown,
                        jk,
                        prefix,
                        params,
                        meter,
                    );
                }
                let scanned = fdbs.catalog().local().scan(table.as_str(), pushdown)?;
                meter.charge(
                    Component::Fdbs,
                    "Scan local table",
                    cost.predicate_eval * scanned.row_count() as u64,
                );
                let out = hash_join(prefix, scanned.rows(), jk, params)?;
                charge_join(meter, cost, scanned.row_count() + out.len());
                return Ok(out);
            }
            let scanned = fdbs.catalog().local().scan(table.as_str(), pushdown)?;
            meter.charge(
                Component::Fdbs,
                "Scan local table",
                cost.predicate_eval * scanned.row_count() as u64,
            );
            Ok(cross(prefix, scanned.rows()))
        }
        FromStep::ScanForeign {
            server,
            remote_name,
            pushdown,
            ..
        } => {
            let scanned = server.scan(remote_name, pushdown)?;
            meter.charge(
                Component::Fdbs,
                format!("Subquery to SQL source {}", server.name()),
                cost.rmi_call + cost.rmi_return,
            );
            if let Some(jk) = jk {
                let out = hash_join(prefix, scanned.rows(), jk, params)?;
                charge_join(meter, cost, scanned.row_count() + out.len());
                return Ok(out);
            }
            Ok(cross(prefix, scanned.rows()))
        }
        FromStep::TableFunc {
            udtf,
            args,
            independent,
            ..
        } => {
            // Independent table functions compose with the prefix via a
            // join-with-selection; they are also invoked only once (their
            // result does not depend on prefix rows).
            if *independent {
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(&[], params))
                    .collect::<FedResult<_>>()?;
                let result = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                if let Some(jk) = jk {
                    let out = hash_join(prefix, result.rows(), jk, params)?;
                    charge_join(meter, cost, result.row_count() + out.len());
                    return Ok(out);
                }
                if position > 0 {
                    meter.charge(
                        Component::Fdbs,
                        "Join with selection (compose result sets)",
                        cost.join_with_selection_setup
                            + cost.join_with_selection_per_row
                                * (prefix.len() * result.row_count()) as u64,
                    );
                }
                Ok(cross(prefix, result.rows()))
            } else {
                // Dependent: one invocation per prefix row — memoized by
                // the evaluated argument tuple on the join-aware path, so
                // identical calls (and their Meter charges) happen once.
                let memo_on = mode == ExecMode::JoinAware && fdbs.udtf_memo_enabled();
                let mut memo: HashMap<Vec<(Option<DataType>, ValueKey)>, Table> = HashMap::new();
                let mut out = Vec::new();
                for row in &prefix {
                    let arg_values: Vec<Value> = args
                        .iter()
                        .map(|a| a.eval(row.values(), params))
                        .collect::<FedResult<_>>()?;
                    let fresh;
                    let result: &Table = if memo_on {
                        // Structural key (type + exact value): argument
                        // tuples that could implicit-cast differently never
                        // share an entry.
                        let key: Vec<(Option<DataType>, ValueKey)> = arg_values
                            .iter()
                            .map(|v| (v.data_type(), v.group_key()))
                            .collect();
                        match memo.entry(key) {
                            Entry::Occupied(e) => e.into_mut(),
                            Entry::Vacant(e) => {
                                e.insert(invoke_udtf(fdbs, udtf, &arg_values, meter)?)
                            }
                        }
                    } else {
                        fresh = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                        &fresh
                    };
                    for rrow in result.rows() {
                        out.push(row.concat(rrow));
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Keep the rows satisfying `filter`, booking one predicate evaluation per
/// input row (the naive composition's per-row cost).
fn filter_rows(
    rows: Vec<Row>,
    filter: &BoundExpr,
    params: &[Value],
    meter: &mut Meter,
    predicate_eval: u64,
) -> FedResult<Vec<Row>> {
    let mut kept = Vec::with_capacity(rows.len());
    for row in rows {
        meter.charge(Component::Fdbs, "Evaluate predicates", predicate_eval);
        if filter.eval_predicate(row.values(), params)? {
            kept.push(row);
        }
    }
    Ok(kept)
}

/// Book the composition cost of a hash join. The step name matches the
/// paper's "join with selection" (it is that operation, implemented
/// better); the per-row cost scales with build + output instead of the
/// cross product.
fn charge_join(meter: &mut Meter, cost: &CostModel, rows: usize) {
    meter.charge(
        Component::Fdbs,
        "Join with selection (compose result sets)",
        cost.join_with_selection_setup + cost.join_with_selection_per_row * rows as u64,
    );
}

/// The join key of one value, with the naive path's error semantics:
/// NULL joins nothing (`None`), NaN is a hard comparison error (the naive
/// path's `sql_cmp` raises "cannot compare" for it on every pairing).
fn join_key_checked(v: &Value) -> FedResult<Option<ValueKey>> {
    match v.join_key() {
        Some(ValueKey::NaN) => Err(FedError::execution(format!(
            "cannot compare {v} in a join key"
        ))),
        other => Ok(other),
    }
}

/// Hash-compose the step's `build_rows` against `prefix` on the extracted
/// equi-join keys. Output order matches `cross` + filter exactly:
/// prefix-major, build rows in scan order. Empty inputs short-circuit
/// before any key is evaluated — the naive path evaluates nothing there
/// either, so error behavior stays aligned.
fn hash_join(
    prefix: Vec<Row>,
    build_rows: &[Row],
    jk: &JoinKey,
    params: &[Value],
) -> FedResult<Vec<Row>> {
    if prefix.is_empty() || build_rows.is_empty() {
        return Ok(Vec::new());
    }
    let mut table: HashMap<Vec<ValueKey>, Vec<usize>> = HashMap::new();
    'build: for (i, row) in build_rows.iter().enumerate() {
        let mut key = Vec::with_capacity(jk.build.len());
        for &c in &jk.build {
            match join_key_checked(&row.values()[c])? {
                Some(k) => key.push(k),
                None => continue 'build,
            }
        }
        table.entry(key).or_default().push(i);
    }
    let mut out = Vec::new();
    'probe: for left in &prefix {
        let mut key = Vec::with_capacity(jk.probe.len());
        for p in &jk.probe {
            let v = p.eval(left.values(), params)?;
            match join_key_checked(&v)? {
                Some(k) => key.push(k),
                None => continue 'probe,
            }
        }
        if let Some(matches) = table.get(&key) {
            for &i in matches {
                out.push(left.concat(&build_rows[i]));
            }
        }
    }
    Ok(out)
}

/// Serve a single-key local-scan join with index point lookups: one
/// `scan_eq` per *distinct* probe value, cached, instead of one full scan
/// plus a cross product.
fn index_probe_join(
    fdbs: &Fdbs,
    table: &str,
    pushdown: &Predicate,
    jk: &JoinKey,
    prefix: Vec<Row>,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Vec<Row>> {
    let cost = fdbs.cost();
    let local = fdbs.catalog().local();
    let build_col = jk.build[0];
    let mut cache: HashMap<ValueKey, Vec<Row>> = HashMap::new();
    let mut out = Vec::new();
    let mut scanned_total = 0u64;
    for left in &prefix {
        let v = jk.probe[0].eval(left.values(), params)?;
        let Some(key) = join_key_checked(&v)? else {
            continue;
        };
        let matches = match cache.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let t = local.scan_eq(table, build_col, v, pushdown)?;
                scanned_total += t.row_count() as u64;
                e.insert(t.into_rows())
            }
        };
        for r in matches.iter() {
            out.push(left.concat(r));
        }
    }
    meter.charge(
        Component::Fdbs,
        "Scan local table",
        cost.predicate_eval * scanned_total,
    );
    charge_join(meter, cost, out.len());
    Ok(out)
}

/// Stable sort by the evaluated key expressions under `index_cmp`.
fn sort_rows(rows: Vec<Row>, order: &[(BoundExpr, bool)], params: &[Value]) -> FedResult<Vec<Row>> {
    let mut keyed: Vec<(Vec<Value>, Row)> = rows
        .into_iter()
        .map(|row| {
            let keys = order
                .iter()
                .map(|(e, _)| e.eval(row.values(), params))
                .collect::<FedResult<Vec<_>>>()?;
            Ok((keys, row))
        })
        .collect::<FedResult<_>>()?;
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(order) {
            let ord = a.index_cmp(b);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, row)| row).collect())
}

fn table_from_rows(schema: SchemaRef, rows: Vec<Row>) -> Table {
    let mut t = Table::new(schema);
    for row in rows {
        t.push_unchecked(row);
    }
    t
}

/// Group the input rows by the plan's keys and evaluate the aggregate
/// columns. Without GROUP BY there is exactly one group — even over zero
/// rows (`COUNT(*)` of an empty table is 0, `SUM` is NULL). Groups appear
/// in first-appearance order on both paths; the join-aware path finds them
/// through a hash map, the naive path by linear `index_cmp` search.
#[allow(clippy::too_many_arguments)]
fn aggregate_rows(
    fdbs: &Fdbs,
    plan: &Plan,
    agg: &fedwf_plan::AggregatePlan,
    rows: &[Row],
    params: &[Value],
    meter: &mut Meter,
    mode: ExecMode,
) -> FedResult<Table> {
    use fedwf_plan::{AggColumn, AggFn};
    let cost = fdbs.cost();

    // Collected argument values per group: (key values, per-column data).
    struct Group {
        keys: Vec<Value>,
        /// For each aggregate column: non-null argument values (for
        /// COUNT(*): the total row count as `seen`).
        values: Vec<Vec<Value>>,
        seen: u64,
    }
    let agg_count = agg.columns.len();
    let mut groups: Vec<Group> = Vec::new();
    let mut lookup: HashMap<Vec<ValueKey>, usize> = HashMap::new();

    for row in rows {
        meter.charge(Component::Fdbs, "Evaluate predicates", cost.predicate_eval);
        let keys: Vec<Value> = agg
            .keys
            .iter()
            .map(|k| k.eval(row.values(), params))
            .collect::<FedResult<_>>()?;
        let idx = match mode {
            ExecMode::JoinAware => {
                let hkey: Vec<ValueKey> = keys.iter().map(Value::group_key).collect();
                match lookup.entry(hkey) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        groups.push(Group {
                            keys: keys.clone(),
                            values: vec![Vec::new(); agg_count],
                            seen: 0,
                        });
                        *e.insert(groups.len() - 1)
                    }
                }
            }
            ExecMode::Naive => {
                let found = groups.iter().position(|g| {
                    g.keys
                        .iter()
                        .zip(&keys)
                        .all(|(a, b)| a.index_cmp(b) == std::cmp::Ordering::Equal)
                });
                match found {
                    Some(i) => i,
                    None => {
                        groups.push(Group {
                            keys: keys.clone(),
                            values: vec![Vec::new(); agg_count],
                            seen: 0,
                        });
                        groups.len() - 1
                    }
                }
            }
        };
        let group = &mut groups[idx];
        group.seen += 1;
        for (i, (col, _)) in agg.columns.iter().enumerate() {
            if let AggColumn::Agg { arg: Some(arg), .. } = col {
                let v = arg.eval(row.values(), params)?;
                if !v.is_null() {
                    group.values[i].push(v);
                }
            }
        }
    }
    // Global aggregation over zero rows still yields one (empty) group.
    if groups.is_empty() && agg.keys.is_empty() {
        groups.push(Group {
            keys: vec![],
            values: vec![Vec::new(); agg_count],
            seen: 0,
        });
    }

    let mut out = Table::new(plan.out_schema.clone());
    for group in &groups {
        let mut values = Vec::with_capacity(agg_count);
        for (i, ((col, _), schema_col)) in agg
            .columns
            .iter()
            .zip(plan.out_schema.columns())
            .enumerate()
        {
            let v = match col {
                AggColumn::Key(k) => group.keys[*k].clone(),
                AggColumn::Agg { f, arg } => {
                    let collected = &group.values[i];
                    match f {
                        AggFn::Count => match arg {
                            None => Value::BigInt(group.seen as i64),
                            Some(_) => Value::BigInt(collected.len() as i64),
                        },
                        AggFn::Sum | AggFn::Avg => {
                            if collected.is_empty() {
                                Value::Null
                            } else {
                                match (f, schema_col.data_type) {
                                    (AggFn::Avg, _) => {
                                        let as_f: f64 =
                                            collected.iter().filter_map(Value::as_f64).sum();
                                        Value::Double(as_f / collected.len() as f64)
                                    }
                                    (_, DataType::Double) => {
                                        let as_f: f64 =
                                            collected.iter().filter_map(Value::as_f64).sum();
                                        Value::Double(as_f)
                                    }
                                    _ => {
                                        let mut acc: i64 = 0;
                                        for v in collected.iter().filter_map(Value::as_i64) {
                                            acc = acc.checked_add(v).ok_or_else(|| {
                                                FedError::execution("SUM overflow")
                                            })?;
                                        }
                                        Value::BigInt(acc)
                                    }
                                }
                            }
                        }
                        AggFn::Min | AggFn::Max => collected
                            .iter()
                            .cloned()
                            .reduce(|a, b| {
                                let keep_a = match f {
                                    AggFn::Min => a.index_cmp(&b) != std::cmp::Ordering::Greater,
                                    _ => a.index_cmp(&b) != std::cmp::Ordering::Less,
                                };
                                if keep_a {
                                    a
                                } else {
                                    b
                                }
                            })
                            .unwrap_or(Value::Null),
                    }
                }
            };
            values.push(coerce_agg(v, schema_col.data_type)?);
        }
        meter.charge(Component::Fdbs, "Produce result rows", cost.row_output);
        out.push_unchecked(Row::new(values));
    }
    Ok(out)
}

/// Widen an aggregate result to the declared column type. A value that
/// does not fit the declared type is a hard error — pushing it through
/// unchecked would corrupt the result table's schema invariants.
fn coerce_agg(v: Value, to: DataType) -> FedResult<Value> {
    if v.is_null() {
        return Ok(v);
    }
    implicit_cast(&v, to).map_err(|e| {
        FedError::execution(format!(
            "aggregate result {v} does not fit declared column type {to}: {e}"
        ))
    })
}

fn cross(prefix: Vec<Row>, rows: &[Row]) -> Vec<Row> {
    let mut out = Vec::with_capacity(prefix.len() * rows.len());
    for left in &prefix {
        for right in rows {
            out.push(left.concat(right));
        }
    }
    out
}

/// Invoke a UDTF: book its architecture charges, bind arguments, run the
/// body (recursing into the engine for SQL-bodied functions), and map the
/// result to the declared return schema.
pub fn invoke_udtf(
    fdbs: &Fdbs,
    udtf: &Udtf,
    args: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    udtf.charges.book_start(meter);

    if args.len() != udtf.params.len() {
        return Err(FedError::execution(format!(
            "function {} expects {} arguments, got {}",
            udtf.name,
            udtf.params.len(),
            args.len()
        )));
    }
    let bound: Vec<Value> = args
        .iter()
        .zip(&udtf.params)
        .map(|(v, (pname, ptype))| {
            implicit_cast(v, *ptype)
                .map_err(|e| FedError::execution(format!("argument {pname} of {}: {e}", udtf.name)))
        })
        .collect::<FedResult<_>>()?;

    let raw = match &udtf.kind {
        UdtfKind::Native(body) => {
            body(&bound, meter).context(format!("invoking table function {}", udtf.name))?
        }
        UdtfKind::Sql(body) => fdbs
            .execute_function_body(udtf, body, &bound, meter)
            .context(format!("invoking SQL table function {}", udtf.name))?,
    };

    // Positional mapping onto the declared return schema (the SQL body's
    // column names need not match the declared names, as in DB2).
    if raw.schema().len() != udtf.returns.len() {
        return Err(FedError::execution(format!(
            "function {} returned {} columns but declares {}",
            udtf.name,
            raw.schema().len(),
            udtf.returns.len()
        )));
    }
    let mut mapped = Table::new(udtf.returns.clone());
    for row in raw.rows() {
        let values: Vec<Value> = row
            .values()
            .iter()
            .zip(udtf.returns.columns())
            .map(|(v, col)| {
                implicit_cast(v, col.data_type).map_err(|e| {
                    FedError::execution(format!(
                        "function {} result column {}: {e}",
                        udtf.name, col.name
                    ))
                })
            })
            .collect::<FedResult<_>>()?;
        mapped.push_unchecked(Row::new(values));
    }

    udtf.charges.book_finish(meter);
    Ok(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggColumn, AggFn, AggregatePlan};
    use fedwf_sim::CostModel;
    use fedwf_types::{Column, Ident, Schema};
    use std::sync::Arc;

    #[test]
    fn coerce_agg_rejects_lossy_results() {
        assert_eq!(
            coerce_agg(Value::Int(5), DataType::BigInt).unwrap(),
            Value::BigInt(5)
        );
        assert!(coerce_agg(Value::Double(2.5), DataType::Int).is_err());
        assert!(coerce_agg(Value::Null, DataType::Int).unwrap().is_null());
    }

    /// A DOUBLE aggregate flowing into a column declared INT must fail
    /// loudly, not be pushed unchecked into the mistyped table.
    #[test]
    fn double_aggregate_into_int_column_fails_loudly() {
        let fdbs = Fdbs::new(CostModel::zero());
        let agg = AggregatePlan {
            keys: vec![],
            columns: vec![(
                AggColumn::Agg {
                    f: AggFn::Max,
                    arg: Some(BoundExpr::Literal(Value::Double(2.5))),
                },
                Ident::new("m"),
            )],
        };
        let plan = Plan {
            steps: vec![],
            step_filters: vec![],
            step_join_keys: vec![],
            projection: vec![],
            aggregate: Some(agg.clone()),
            distinct: false,
            order_by: vec![],
            limit: None,
            params: vec![],
            out_schema: Arc::new(Schema::new(vec![Column::new(
                Ident::new("m"),
                DataType::Int,
            )])),
        };
        let mut meter = Meter::new();
        for mode in [ExecMode::JoinAware, ExecMode::Naive] {
            let err = aggregate_rows(&fdbs, &plan, &agg, &[Row::empty()], &[], &mut meter, mode)
                .unwrap_err();
            assert!(
                err.to_string().contains("does not fit"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn integer_sum_overflow_is_an_error() {
        let fdbs = Fdbs::new(CostModel::zero());
        let agg = AggregatePlan {
            keys: vec![],
            columns: vec![(
                AggColumn::Agg {
                    f: AggFn::Sum,
                    arg: Some(BoundExpr::Column {
                        index: 0,
                        data_type: DataType::BigInt,
                    }),
                },
                Ident::new("s"),
            )],
        };
        let plan = Plan {
            steps: vec![],
            step_filters: vec![],
            step_join_keys: vec![],
            projection: vec![],
            aggregate: Some(agg.clone()),
            distinct: false,
            order_by: vec![],
            limit: None,
            params: vec![],
            out_schema: Arc::new(Schema::new(vec![Column::new(
                Ident::new("s"),
                DataType::BigInt,
            )])),
        };
        let rows = vec![
            Row::new(vec![Value::BigInt(i64::MAX)]),
            Row::new(vec![Value::BigInt(1)]),
        ];
        let mut meter = Meter::new();
        for mode in [ExecMode::JoinAware, ExecMode::Naive] {
            let err = aggregate_rows(&fdbs, &plan, &agg, &rows, &[], &mut meter, mode).unwrap_err();
            assert!(err.to_string().contains("SUM overflow"), "{err}");
        }
    }
}
