//! The plan executor: a materializing pipeline over the lateral chain.

use fedwf_sim::{Component, Meter};
use fedwf_types::{implicit_cast, FedError, FedResult, ResultExt, Row, Table, Value};

use crate::engine::Fdbs;
use crate::plan::{self as fedwf_plan, FromStep, Plan};
use crate::udtf::{Udtf, UdtfKind};

/// Execute a bound plan against the engine's catalog, booking executor
/// costs to `meter`. `params` supplies the plan's parameter slots in order.
pub fn execute_plan(
    fdbs: &Fdbs,
    plan: &Plan,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    if params.len() != plan.params.len() {
        return Err(FedError::execution(format!(
            "plan expects {} parameters, got {}",
            plan.params.len(),
            params.len()
        )));
    }
    let cost = fdbs.cost();

    // The lateral chain starts from a single empty row.
    let mut rows: Vec<Row> = vec![Row::empty()];
    for (i, step) in plan.steps.iter().enumerate() {
        rows = execute_step(fdbs, step, i, rows, params, meter)
            .context(format!("evaluating FROM item {} ({step:?})", i + 1))?;
        if let Some(filter) = &plan.step_filters[i] {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                meter.charge(Component::Fdbs, "Evaluate predicates", cost.predicate_eval);
                if filter.eval_predicate(row.values(), params)? {
                    kept.push(row);
                }
            }
            rows = kept;
        }
    }

    // Grouping/aggregation replaces the scalar projection entirely.
    if let Some(agg) = &plan.aggregate {
        let mut out = aggregate_rows(fdbs, plan, agg, &rows, params, meter)?;
        if let Some(limit) = plan.limit {
            let rows: Vec<Row> = out.into_rows().into_iter().take(limit as usize).collect();
            let mut limited = Table::new(plan.out_schema.clone());
            for row in rows {
                limited.push_unchecked(row);
            }
            out = limited;
        }
        return Ok(out);
    }

    // ORDER BY is evaluated on the full (pre-projection) row layout, so it
    // may reference any FROM column, not just projected ones.
    if !plan.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Row)> = rows
            .into_iter()
            .map(|row| {
                let keys = plan
                    .order_by
                    .iter()
                    .map(|(e, _)| e.eval(row.values(), params))
                    .collect::<FedResult<Vec<_>>>()?;
                Ok((keys, row))
            })
            .collect::<FedResult<_>>()?;
        keyed.sort_by(|(ka, _), (kb, _)| {
            for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(&plan.order_by) {
                let ord = a.index_cmp(b);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = keyed.into_iter().map(|(_, row)| row).collect();
    }

    // Projection.
    let mut out = Table::new(plan.out_schema.clone());
    for row in &rows {
        let values: Vec<Value> = plan
            .projection
            .iter()
            .map(|(e, _)| e.eval(row.values(), params))
            .collect::<FedResult<_>>()?;
        meter.charge(Component::Fdbs, "Produce result rows", cost.row_output);
        out.push_unchecked(Row::new(values));
    }

    // DISTINCT.
    if plan.distinct {
        let mut seen: Vec<Row> = Vec::new();
        let mut deduped = Table::new(plan.out_schema.clone());
        for row in out.into_rows() {
            let dup = seen.iter().any(|r| {
                r.values()
                    .iter()
                    .zip(row.values())
                    .all(|(a, b)| a.index_cmp(b) == std::cmp::Ordering::Equal)
            });
            if !dup {
                seen.push(row.clone());
                deduped.push_unchecked(row);
            }
        }
        out = deduped;
    }

    // LIMIT.
    if let Some(limit) = plan.limit {
        let rows: Vec<Row> = out.into_rows().into_iter().take(limit as usize).collect();
        let mut limited = Table::new(plan.out_schema.clone());
        for row in rows {
            limited.push_unchecked(row);
        }
        out = limited;
    }

    Ok(out)
}

fn execute_step(
    fdbs: &Fdbs,
    step: &FromStep,
    position: usize,
    prefix: Vec<Row>,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Vec<Row>> {
    let cost = fdbs.cost();
    match step {
        FromStep::ScanLocal {
            table, pushdown, ..
        } => {
            let scanned = fdbs.catalog().local().scan(table.as_str(), pushdown)?;
            meter.charge(
                Component::Fdbs,
                "Scan local table",
                cost.predicate_eval * scanned.row_count() as u64,
            );
            Ok(cross(prefix, scanned.rows()))
        }
        FromStep::ScanForeign {
            server,
            remote_name,
            pushdown,
            ..
        } => {
            let scanned = server.scan(remote_name, pushdown)?;
            meter.charge(
                Component::Fdbs,
                format!("Subquery to SQL source {}", server.name()),
                cost.rmi_call + cost.rmi_return,
            );
            Ok(cross(prefix, scanned.rows()))
        }
        FromStep::TableFunc {
            udtf,
            args,
            independent,
            ..
        } => {
            // Independent table functions compose with the prefix via a
            // join-with-selection; they are also invoked only once (their
            // result does not depend on prefix rows).
            if *independent {
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(&[], params))
                    .collect::<FedResult<_>>()?;
                let result = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                if position > 0 {
                    meter.charge(
                        Component::Fdbs,
                        "Join with selection (compose result sets)",
                        cost.join_with_selection_setup
                            + cost.join_with_selection_per_row
                                * (prefix.len() * result.row_count()) as u64,
                    );
                }
                Ok(cross(prefix, result.rows()))
            } else {
                let mut out = Vec::new();
                for row in &prefix {
                    let arg_values: Vec<Value> = args
                        .iter()
                        .map(|a| a.eval(row.values(), params))
                        .collect::<FedResult<_>>()?;
                    let result = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                    for rrow in result.rows() {
                        out.push(row.concat(rrow));
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Group the input rows by the plan's keys and evaluate the aggregate
/// columns. Without GROUP BY there is exactly one group — even over zero
/// rows (`COUNT(*)` of an empty table is 0, `SUM` is NULL).
fn aggregate_rows(
    fdbs: &Fdbs,
    plan: &Plan,
    agg: &fedwf_plan::AggregatePlan,
    rows: &[Row],
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    use fedwf_plan::{AggColumn, AggFn};
    let cost = fdbs.cost();

    // Collected argument values per group: (key values, per-column data).
    struct Group {
        keys: Vec<Value>,
        /// For each aggregate column: non-null argument values (for
        /// COUNT(*): the total row count as `seen`).
        values: Vec<Vec<Value>>,
        seen: u64,
    }
    let agg_count = agg.columns.len();
    let mut groups: Vec<Group> = Vec::new();

    for row in rows {
        meter.charge(Component::Fdbs, "Evaluate predicates", cost.predicate_eval);
        let keys: Vec<Value> = agg
            .keys
            .iter()
            .map(|k| k.eval(row.values(), params))
            .collect::<FedResult<_>>()?;
        let group = match groups.iter_mut().find(|g| {
            g.keys
                .iter()
                .zip(&keys)
                .all(|(a, b)| a.index_cmp(b) == std::cmp::Ordering::Equal)
        }) {
            Some(g) => g,
            None => {
                groups.push(Group {
                    keys: keys.clone(),
                    values: vec![Vec::new(); agg_count],
                    seen: 0,
                });
                groups.last_mut().expect("just pushed")
            }
        };
        group.seen += 1;
        for (i, (col, _)) in agg.columns.iter().enumerate() {
            if let AggColumn::Agg { arg: Some(arg), .. } = col {
                let v = arg.eval(row.values(), params)?;
                if !v.is_null() {
                    group.values[i].push(v);
                }
            }
        }
    }
    // Global aggregation over zero rows still yields one (empty) group.
    if groups.is_empty() && agg.keys.is_empty() {
        groups.push(Group {
            keys: vec![],
            values: vec![Vec::new(); agg_count],
            seen: 0,
        });
    }

    let mut out = Table::new(plan.out_schema.clone());
    for group in &groups {
        let mut values = Vec::with_capacity(agg_count);
        for (i, ((col, _), schema_col)) in agg
            .columns
            .iter()
            .zip(plan.out_schema.columns())
            .enumerate()
        {
            let v = match col {
                AggColumn::Key(k) => group.keys[*k].clone(),
                AggColumn::Agg { f, arg } => {
                    let collected = &group.values[i];
                    match f {
                        AggFn::Count => match arg {
                            None => Value::BigInt(group.seen as i64),
                            Some(_) => Value::BigInt(collected.len() as i64),
                        },
                        AggFn::Sum | AggFn::Avg => {
                            if collected.is_empty() {
                                Value::Null
                            } else {
                                let as_f: f64 = collected.iter().filter_map(Value::as_f64).sum();
                                match (f, schema_col.data_type) {
                                    (AggFn::Avg, _) => Value::Double(as_f / collected.len() as f64),
                                    (_, fedwf_types::DataType::Double) => Value::Double(as_f),
                                    _ => {
                                        let as_i: i64 =
                                            collected.iter().filter_map(Value::as_i64).sum();
                                        Value::BigInt(as_i)
                                    }
                                }
                            }
                        }
                        AggFn::Min | AggFn::Max => collected
                            .iter()
                            .cloned()
                            .reduce(|a, b| {
                                let keep_a = match f {
                                    AggFn::Min => a.index_cmp(&b) != std::cmp::Ordering::Greater,
                                    _ => a.index_cmp(&b) != std::cmp::Ordering::Less,
                                };
                                if keep_a {
                                    a
                                } else {
                                    b
                                }
                            })
                            .unwrap_or(Value::Null),
                    }
                }
            };
            values.push(coerce_agg(v, schema_col.data_type));
        }
        meter.charge(Component::Fdbs, "Produce result rows", cost.row_output);
        out.push_unchecked(Row::new(values));
    }
    Ok(out)
}

/// Widen an aggregate result to the declared column type where possible
/// (keys already match; COUNT/SUM naturally produce BIGINT).
fn coerce_agg(v: Value, to: fedwf_types::DataType) -> Value {
    if v.is_null() {
        return v;
    }
    match implicit_cast(&v, to) {
        Ok(coerced) => coerced,
        Err(_) => v,
    }
}

fn cross(prefix: Vec<Row>, rows: &[Row]) -> Vec<Row> {
    let mut out = Vec::with_capacity(prefix.len() * rows.len());
    for left in &prefix {
        for right in rows {
            out.push(left.concat(right));
        }
    }
    out
}

/// Invoke a UDTF: book its architecture charges, bind arguments, run the
/// body (recursing into the engine for SQL-bodied functions), and map the
/// result to the declared return schema.
pub fn invoke_udtf(
    fdbs: &Fdbs,
    udtf: &Udtf,
    args: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    udtf.charges.book_start(meter);

    if args.len() != udtf.params.len() {
        return Err(FedError::execution(format!(
            "function {} expects {} arguments, got {}",
            udtf.name,
            udtf.params.len(),
            args.len()
        )));
    }
    let bound: Vec<Value> = args
        .iter()
        .zip(&udtf.params)
        .map(|(v, (pname, ptype))| {
            implicit_cast(v, *ptype)
                .map_err(|e| FedError::execution(format!("argument {pname} of {}: {e}", udtf.name)))
        })
        .collect::<FedResult<_>>()?;

    let raw = match &udtf.kind {
        UdtfKind::Native(body) => {
            body(&bound, meter).context(format!("invoking table function {}", udtf.name))?
        }
        UdtfKind::Sql(body) => fdbs
            .execute_function_body(udtf, body, &bound, meter)
            .context(format!("invoking SQL table function {}", udtf.name))?,
    };

    // Positional mapping onto the declared return schema (the SQL body's
    // column names need not match the declared names, as in DB2).
    if raw.schema().len() != udtf.returns.len() {
        return Err(FedError::execution(format!(
            "function {} returned {} columns but declares {}",
            udtf.name,
            raw.schema().len(),
            udtf.returns.len()
        )));
    }
    let mut mapped = Table::new(udtf.returns.clone());
    for row in raw.rows() {
        let values: Vec<Value> = row
            .values()
            .iter()
            .zip(udtf.returns.columns())
            .map(|(v, col)| {
                implicit_cast(v, col.data_type).map_err(|e| {
                    FedError::execution(format!(
                        "function {} result column {}: {e}",
                        udtf.name, col.name
                    ))
                })
            })
            .collect::<FedResult<_>>()?;
        mapped.push_unchecked(Row::new(values));
    }

    udtf.charges.book_finish(meter);
    Ok(mapped)
}
