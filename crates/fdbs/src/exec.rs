//! The plan executor: a join-aware pipeline over the lateral chain.
//!
//! Three strategies share this module. The default, [`ExecMode::Streaming`],
//! pulls bounded row batches through a chain of non-blocking operators
//! (chunked local scans, lazy hash-join probes, index point lookups,
//! residual filters, dependent-UDTF calls) so intermediate results are never
//! materialized whole; only genuine pipeline breakers — hash-join build
//! sides, buffered foreign/UDTF result sets, ORDER BY, GROUP BY — buffer
//! rows, and each such buffer is tallied on the meter's materialization
//! counters. [`ExecMode::JoinAware`] is the materializing ancestor of the
//! streaming path: it composes each step with its prefix via a hash join on
//! the equi-join keys the binder extracted (`Plan::step_join_keys`), serves
//! single-key local scans with index point lookups, memoizes dependent UDTF
//! invocations by argument tuple, and uses hashed GROUP BY/DISTINCT — but
//! materializes every composed intermediate. The retained [`ExecMode::Naive`]
//! path materializes the cross product and re-evaluates the join conjuncts
//! per composed row — the reference semantics the equivalence suite checks
//! the fast paths against.
//!
//! All three honor [`Plan::step_projections`]: when the binder pruned a
//! step, its scan returns only the referenced columns (pushed through
//! `Database::scan_project` / `ForeignServer::scan_project`) and UDTF result
//! rows are cut down before composing. `JoinKey::build` keeps the step's
//! original column numbering, so executors translate build columns into
//! pruned positions before hashing.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

use fedwf_relstore::{Predicate, RowId};
use fedwf_sim::{Component, CostModel, Meter, SpanName, TraceNode};
use fedwf_types::{
    implicit_cast, DataType, FedError, FedResult, Ident, ResultExt, Row, SchemaRef, Table, TxnId,
    Value, ValueKey,
};

use crate::engine::Fdbs;
use crate::expr::BoundExpr;
use crate::plan::{Access, AggColumn, AggFn, AggregatePlan, FromStep, JoinKey, Plan};
use crate::udtf::{Udtf, UdtfKind};

/// Which executor strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Pull-based batches through non-blocking operators; only pipeline
    /// breakers (build sides, sorts, aggregates) buffer rows. The default.
    Streaming,
    /// Hash joins on extracted equi-join keys, index probes, dependent-UDTF
    /// memoization, hashed grouping/DISTINCT — materializing every composed
    /// intermediate. Kept as the PR-2 reference point for E14.
    JoinAware,
    /// Cross product + per-row predicate re-evaluation, linear group
    /// lookup. Kept as the reference path for equivalence testing and the
    /// E13 scaling comparison.
    Naive,
}

/// Rows per streaming batch. Small enough that a batch of wide rows stays
/// cache-friendly, large enough to amortize per-batch dispatch.
pub(crate) const STREAM_BATCH_ROWS: usize = 1024;

/// Execute a bound plan against the engine's catalog, booking executor
/// costs to `meter`. `params` supplies the plan's parameter slots in order.
/// Uses the engine's configured [`ExecMode`].
pub fn execute_plan(
    fdbs: &Fdbs,
    plan: &Plan,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    execute_plan_with_mode(fdbs, plan, params, meter, fdbs.exec_mode())
}

/// [`execute_plan`] with an explicit strategy.
pub fn execute_plan_with_mode(
    fdbs: &Fdbs,
    plan: &Plan,
    params: &[Value],
    meter: &mut Meter,
    mode: ExecMode,
) -> FedResult<Table> {
    if params.len() != plan.params.len() {
        return Err(FedError::execution(format!(
            "plan expects {} parameters, got {}",
            plan.params.len(),
            params.len()
        )));
    }
    match mode {
        ExecMode::Streaming if fdbs.vectorized_enabled() => {
            crate::vexec::execute_streaming_vectorized(fdbs, plan, params, meter)
        }
        ExecMode::Streaming => execute_streaming(fdbs, plan, params, meter),
        ExecMode::JoinAware | ExecMode::Naive => {
            execute_materialized(fdbs, plan, params, meter, mode)
        }
    }
}

// ---------------------------------------------------------------------------
// Materializing executors (JoinAware + Naive reference)
// ---------------------------------------------------------------------------

fn execute_materialized(
    fdbs: &Fdbs,
    plan: &Plan,
    params: &[Value],
    meter: &mut Meter,
    mode: ExecMode,
) -> FedResult<Table> {
    let cost = fdbs.cost();

    // The lateral chain starts from a single empty row.
    let mut rows: Vec<Row> = vec![Row::empty()];
    for (i, step) in plan.steps.iter().enumerate() {
        let jk = plan.step_join_keys[i].as_ref();
        let proj = plan.step_projections.get(i).and_then(|p| p.as_deref());
        let access = plan.step_access.get(i).copied().unwrap_or_default();
        rows = execute_step(fdbs, step, i, jk, proj, access, rows, params, meter, mode)
            .context(format!("evaluating FROM item {} ({step:?})", i + 1))?;
        // Every composed intermediate is a materialization point on this
        // path — that is exactly what the streaming executor avoids.
        tally_rows(meter, &rows);
        if mode == ExecMode::Naive {
            // The naive path ignored the join keys during composition, so
            // their conjuncts apply here as an ordinary residual filter.
            if let Some(jk) = jk {
                rows = filter_rows(rows, &jk.residual, params, meter, cost.predicate_eval)?;
            }
        }
        if let Some(filter) = &plan.step_filters[i] {
            rows = filter_rows(rows, filter, params, meter, cost.predicate_eval)?;
        }
    }

    // Grouping/aggregation replaces the scalar projection entirely; its
    // ORDER BY keys index the aggregate *output* layout.
    if let Some(agg) = &plan.aggregate {
        let out = aggregate_rows(fdbs, plan, agg, &rows, params, meter, mode)?;
        return finish_aggregate(plan, out, params);
    }

    scalar_tail(fdbs, plan, rows, params, meter, mode)
}

/// Sort (ORDER BY on the aggregate output layout) and LIMIT an aggregate
/// result — shared by the materializing and streaming paths.
pub(crate) fn finish_aggregate(plan: &Plan, mut out: Table, params: &[Value]) -> FedResult<Table> {
    if !plan.order_by.is_empty() {
        let sorted = sort_rows(out.into_rows(), &plan.order_by, params)?;
        out = table_from_rows(plan.out_schema.clone(), sorted);
    }
    if let Some(limit) = plan.limit {
        let rows: Vec<Row> = out.into_rows().into_iter().take(limit as usize).collect();
        out = table_from_rows(plan.out_schema.clone(), rows);
    }
    Ok(out)
}

/// The scalar (non-aggregate) finishing stages over fully collected rows:
/// ORDER BY on the pre-projection layout, projection, DISTINCT, LIMIT.
/// Shared by the materializing paths and the streaming sort sink.
pub(crate) fn scalar_tail(
    fdbs: &Fdbs,
    plan: &Plan,
    mut rows: Vec<Row>,
    params: &[Value],
    meter: &mut Meter,
    mode: ExecMode,
) -> FedResult<Table> {
    let cost = fdbs.cost();

    // ORDER BY is evaluated on the full (pre-projection) row layout, so it
    // may reference any FROM column, not just projected ones.
    if !plan.order_by.is_empty() {
        rows = sort_rows(rows, &plan.order_by, params)?;
    }

    // Projection.
    let mut out = Table::new(plan.out_schema.clone());
    for row in &rows {
        let values: Vec<Value> = plan
            .projection
            .iter()
            .map(|(e, _)| e.eval(row.values(), params))
            .collect::<FedResult<_>>()?;
        meter.charge(Component::Fdbs, "Produce result rows", cost.row_output);
        out.push_unchecked(Row::new(values));
    }

    // DISTINCT: hashed on the fast paths, quadratic scan on the naive
    // reference path. Both keep first-appearance order and group by
    // `index_cmp` equality (`group_key` is hash-consistent with it).
    if plan.distinct {
        let mut deduped = Table::new(plan.out_schema.clone());
        match mode {
            ExecMode::Streaming | ExecMode::JoinAware => {
                let mut seen: HashSet<Vec<ValueKey>> = HashSet::new();
                for row in out.into_rows() {
                    let key: Vec<ValueKey> = row.values().iter().map(Value::group_key).collect();
                    if seen.insert(key) {
                        deduped.push_unchecked(row);
                    }
                }
            }
            ExecMode::Naive => {
                let mut seen: Vec<Row> = Vec::new();
                for row in out.into_rows() {
                    let dup = seen.iter().any(|r| {
                        r.values()
                            .iter()
                            .zip(row.values())
                            .all(|(a, b)| a.index_cmp(b) == std::cmp::Ordering::Equal)
                    });
                    if !dup {
                        seen.push(row.clone());
                        deduped.push_unchecked(row);
                    }
                }
            }
        }
        out = deduped;
    }

    // LIMIT.
    if let Some(limit) = plan.limit {
        let rows: Vec<Row> = out.into_rows().into_iter().take(limit as usize).collect();
        out = table_from_rows(plan.out_schema.clone(), rows);
    }

    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn execute_step(
    fdbs: &Fdbs,
    step: &FromStep,
    position: usize,
    jk: Option<&JoinKey>,
    proj: Option<&[usize]>,
    access: Access,
    prefix: Vec<Row>,
    params: &[Value],
    meter: &mut Meter,
    mode: ExecMode,
) -> FedResult<Vec<Row>> {
    let cost = fdbs.cost();
    let jk = match mode {
        ExecMode::Streaming | ExecMode::JoinAware => jk,
        ExecMode::Naive => None,
    };
    match step {
        FromStep::ScanLocal {
            table,
            pushdown,
            schema,
            ..
        } => {
            if let Some(jk) = jk {
                if use_index_probe(fdbs, table, schema, jk, access)? {
                    return index_probe_join(
                        fdbs,
                        table.as_str(),
                        pushdown,
                        jk,
                        proj,
                        prefix,
                        params,
                        meter,
                    );
                }
                let scanned =
                    fdbs.catalog()
                        .local()
                        .scan_project(table.as_str(), pushdown, proj)?;
                meter.charge(
                    Component::Fdbs,
                    "Scan local table",
                    cost.predicate_eval * scanned.row_count() as u64,
                );
                tally_rows(meter, scanned.rows());
                let build_cols = build_positions(&jk.build, proj)?;
                let out = hash_join(prefix, scanned.rows(), &build_cols, &jk.probe, params)?;
                charge_join(meter, cost, scanned.row_count() + out.len());
                return Ok(out);
            }
            let scanned = fdbs
                .catalog()
                .local()
                .scan_project(table.as_str(), pushdown, proj)?;
            meter.charge(
                Component::Fdbs,
                "Scan local table",
                cost.predicate_eval * scanned.row_count() as u64,
            );
            tally_rows(meter, scanned.rows());
            Ok(cross(prefix, scanned.rows()))
        }
        FromStep::ScanForeign {
            server,
            remote_name,
            pushdown,
            ..
        } => {
            let scanned = server.scan_project(remote_name, pushdown, proj)?;
            meter.charge(
                Component::Fdbs,
                format!("Subquery to SQL source {}", server.name()),
                cost.rmi_call + cost.rmi_return,
            );
            tally_rows(meter, scanned.rows());
            if let Some(jk) = jk {
                let build_cols = build_positions(&jk.build, proj)?;
                let out = hash_join(prefix, scanned.rows(), &build_cols, &jk.probe, params)?;
                charge_join(meter, cost, scanned.row_count() + out.len());
                return Ok(out);
            }
            Ok(cross(prefix, scanned.rows()))
        }
        FromStep::TableFunc {
            udtf,
            args,
            independent,
            ..
        } => {
            // Independent table functions compose with the prefix via a
            // join-with-selection; they are also invoked only once (their
            // result does not depend on prefix rows).
            if *independent {
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(&[], params))
                    .collect::<FedResult<_>>()?;
                let result = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                let rrows = pruned_rows(&result, proj);
                tally_rows(meter, &rrows);
                if let Some(jk) = jk {
                    let build_cols = build_positions(&jk.build, proj)?;
                    let out = hash_join(prefix, &rrows, &build_cols, &jk.probe, params)?;
                    charge_join(meter, cost, rrows.len() + out.len());
                    return Ok(out);
                }
                if position > 0 {
                    meter.charge(
                        Component::Fdbs,
                        "Join with selection (compose result sets)",
                        cost.join_with_selection_setup
                            + cost.join_with_selection_per_row
                                * (prefix.len() * rrows.len()) as u64,
                    );
                }
                Ok(cross(prefix, &rrows))
            } else {
                // Dependent: one invocation per prefix row — memoized by
                // the evaluated argument tuple on the fast paths, so
                // identical calls (and their Meter charges) happen once.
                let memo_on = mode != ExecMode::Naive && fdbs.udtf_memo_enabled();
                let mut memo: HashMap<Vec<(Option<DataType>, ValueKey)>, Vec<Row>> = HashMap::new();
                let mut out = Vec::new();
                for row in &prefix {
                    let arg_values: Vec<Value> = args
                        .iter()
                        .map(|a| a.eval(row.values(), params))
                        .collect::<FedResult<_>>()?;
                    let fresh;
                    let result: &[Row] = if memo_on {
                        // Structural key (type + exact value): argument
                        // tuples that could implicit-cast differently never
                        // share an entry.
                        let key: Vec<(Option<DataType>, ValueKey)> = arg_values
                            .iter()
                            .map(|v| (v.data_type(), v.group_key()))
                            .collect();
                        match memo.entry(key) {
                            Entry::Occupied(e) => e.into_mut(),
                            Entry::Vacant(e) => {
                                let t = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                                let rows = pruned_rows(&t, proj);
                                tally_rows(meter, &rows);
                                e.insert(rows)
                            }
                        }
                    } else {
                        let t = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                        fresh = pruned_rows(&t, proj);
                        tally_rows(meter, &fresh);
                        &fresh
                    };
                    for rrow in result {
                        out.push(row.concat(rrow));
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Whether a joined local scan can be served by index point lookups: a
/// single integer-typed join key backed by an index. (DOUBLE keys fall back
/// to the hash join: NaN would change the naive path's error semantics
/// under the storage layer's silent 3VL comparison.)
pub(crate) fn step_is_indexable(
    fdbs: &Fdbs,
    table: &Ident,
    schema: &SchemaRef,
    jk: &JoinKey,
) -> FedResult<bool> {
    Ok(jk.build.len() == 1
        && schema.columns()[jk.build[0]].data_type != DataType::Double
        && jk.probe[0].data_type() != Some(DataType::Double)
        && fdbs
            .catalog()
            .local()
            .index_serves(table.as_str(), &Predicate::eq(jk.build[0], Value::Null))?)
}

/// Apply the planner's access-path choice to one joined local scan.
/// [`Access::Hash`] forces the hash join; [`Access::IndexProbe`] and
/// [`Access::Auto`] still re-check indexability at run time (an index may
/// have been dropped since planning), so a stale choice degrades to the
/// hash join instead of failing.
pub(crate) fn use_index_probe(
    fdbs: &Fdbs,
    table: &Ident,
    schema: &SchemaRef,
    jk: &JoinKey,
    access: Access,
) -> FedResult<bool> {
    match access {
        Access::Hash => Ok(false),
        Access::IndexProbe | Access::Auto => step_is_indexable(fdbs, table, schema, jk),
    }
}

/// Translate the original step-local build columns of a join key into
/// positions within the pruned step projection. The binder always keeps
/// join build columns in the projection, so a miss is an internal error.
pub(crate) fn build_positions(build: &[usize], proj: Option<&[usize]>) -> FedResult<Vec<usize>> {
    match proj {
        None => Ok(build.to_vec()),
        Some(p) => build
            .iter()
            .map(|b| {
                p.iter().position(|c| c == b).ok_or_else(|| {
                    FedError::execution(format!(
                        "join build column {b} was pruned out of the step projection"
                    ))
                })
            })
            .collect(),
    }
}

/// A step's result rows cut down to the pruned projection (UDTF results are
/// produced full-width by the function body; scans prune at the source).
pub(crate) fn pruned_rows(table: &Table, proj: Option<&[usize]>) -> Vec<Row> {
    match proj {
        None => table.rows().to_vec(),
        Some(p) => table.rows().iter().map(|r| r.project(p)).collect(),
    }
}

/// Record `rows` as materialized on the meter's observability counters.
pub(crate) fn tally_rows(meter: &mut Meter, rows: &[Row]) {
    let bytes: usize = rows.iter().map(Row::approx_bytes).sum();
    meter.tally_materialized(rows.len() as u64, bytes as u64);
}

/// Keep the rows satisfying `filter`, booking one predicate evaluation per
/// input row (the naive composition's per-row cost).
pub(crate) fn filter_rows(
    rows: Vec<Row>,
    filter: &BoundExpr,
    params: &[Value],
    meter: &mut Meter,
    predicate_eval: u64,
) -> FedResult<Vec<Row>> {
    let mut kept = Vec::with_capacity(rows.len());
    for row in rows {
        meter.charge(Component::Fdbs, "Evaluate predicates", predicate_eval);
        if filter.eval_predicate(row.values(), params)? {
            kept.push(row);
        }
    }
    Ok(kept)
}

/// Book the composition cost of a hash join. The step name matches the
/// paper's "join with selection" (it is that operation, implemented
/// better); the per-row cost scales with build + output instead of the
/// cross product.
pub(crate) fn charge_join(meter: &mut Meter, cost: &CostModel, rows: usize) {
    meter.charge(
        Component::Fdbs,
        "Join with selection (compose result sets)",
        cost.join_with_selection_setup + cost.join_with_selection_per_row * rows as u64,
    );
}

/// The join key of one value, with the naive path's error semantics:
/// NULL joins nothing (`None`), NaN is a hard comparison error (the naive
/// path's `sql_cmp` raises "cannot compare" for it on every pairing).
pub(crate) fn join_key_checked(v: &Value) -> FedResult<Option<ValueKey>> {
    match v.join_key() {
        Some(ValueKey::NaN) => Err(FedError::execution(format!(
            "cannot compare {v} in a join key"
        ))),
        other => Ok(other),
    }
}

/// Evaluate the build-side key of one row; `None` means the row joins
/// nothing (a NULL key under SQL three-valued logic).
pub(crate) fn build_key(row: &Row, build_cols: &[usize]) -> FedResult<Option<Vec<ValueKey>>> {
    let mut key = Vec::with_capacity(build_cols.len());
    for &c in build_cols {
        match join_key_checked(&row.values()[c])? {
            Some(k) => key.push(k),
            None => return Ok(None),
        }
    }
    Ok(Some(key))
}

/// Evaluate the probe-side key of one prefix row; `None` joins nothing.
fn probe_key(row: &Row, probe: &[BoundExpr], params: &[Value]) -> FedResult<Option<Vec<ValueKey>>> {
    let mut key = Vec::with_capacity(probe.len());
    for p in probe {
        let v = p.eval(row.values(), params)?;
        match join_key_checked(&v)? {
            Some(k) => key.push(k),
            None => return Ok(None),
        }
    }
    Ok(Some(key))
}

/// Hash-compose the step's `build_rows` against `prefix` on the extracted
/// equi-join keys. `build_cols` index the build rows' (possibly pruned)
/// layout. Output order matches `cross` + filter exactly: prefix-major,
/// build rows in scan order. Empty inputs short-circuit before any key is
/// evaluated — the naive path evaluates nothing there either, so error
/// behavior stays aligned.
fn hash_join(
    prefix: Vec<Row>,
    build_rows: &[Row],
    build_cols: &[usize],
    probe: &[BoundExpr],
    params: &[Value],
) -> FedResult<Vec<Row>> {
    if prefix.is_empty() || build_rows.is_empty() {
        return Ok(Vec::new());
    }
    let mut table: HashMap<Vec<ValueKey>, Vec<usize>> = HashMap::new();
    for (i, row) in build_rows.iter().enumerate() {
        if let Some(key) = build_key(row, build_cols)? {
            table.entry(key).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    for left in &prefix {
        let Some(key) = probe_key(left, probe, params)? else {
            continue;
        };
        if let Some(matches) = table.get(&key) {
            for &i in matches {
                out.push(left.concat(&build_rows[i]));
            }
        }
    }
    Ok(out)
}

/// Serve a single-key local-scan join with index point lookups: one
/// `scan_eq` per *distinct* probe value, cached, instead of one full scan
/// plus a cross product. The probe column keeps the table's original
/// numbering (storage filters before projecting); cached rows come back in
/// the pruned layout.
#[allow(clippy::too_many_arguments)]
fn index_probe_join(
    fdbs: &Fdbs,
    table: &str,
    pushdown: &Predicate,
    jk: &JoinKey,
    proj: Option<&[usize]>,
    prefix: Vec<Row>,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Vec<Row>> {
    let cost = fdbs.cost();
    let local = fdbs.catalog().local();
    let build_col = jk.build[0];
    let mut cache: HashMap<ValueKey, Vec<Row>> = HashMap::new();
    let mut out = Vec::new();
    let mut scanned_total = 0u64;
    for left in &prefix {
        let v = jk.probe[0].eval(left.values(), params)?;
        let Some(key) = join_key_checked(&v)? else {
            continue;
        };
        let matches = match cache.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let t = local.scan_eq_project(table, build_col, v, pushdown, proj)?;
                scanned_total += t.row_count() as u64;
                let rows = t.into_rows();
                tally_rows(meter, &rows);
                e.insert(rows)
            }
        };
        for r in matches.iter() {
            out.push(left.concat(r));
        }
    }
    meter.charge(
        Component::Fdbs,
        "Scan local table",
        cost.predicate_eval * scanned_total,
    );
    charge_join(meter, cost, out.len());
    Ok(out)
}

/// Stable sort by the evaluated key expressions under `index_cmp`.
fn sort_rows(rows: Vec<Row>, order: &[(BoundExpr, bool)], params: &[Value]) -> FedResult<Vec<Row>> {
    let mut keyed: Vec<(Vec<Value>, Row)> = rows
        .into_iter()
        .map(|row| {
            let keys = order
                .iter()
                .map(|(e, _)| e.eval(row.values(), params))
                .collect::<FedResult<Vec<_>>>()?;
            Ok((keys, row))
        })
        .collect::<FedResult<_>>()?;
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(order) {
            let ord = a.index_cmp(b);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, row)| row).collect())
}

pub(crate) fn table_from_rows(schema: SchemaRef, rows: Vec<Row>) -> Table {
    let mut t = Table::new(schema);
    for row in rows {
        t.push_unchecked(row);
    }
    t
}

// ---------------------------------------------------------------------------
// Incremental aggregation (shared by all modes)
// ---------------------------------------------------------------------------

/// Collected argument values per group: (key values, per-column data).
pub(crate) struct Group {
    keys: Vec<Value>,
    /// For each aggregate column: non-null argument values (for
    /// COUNT(*): the total row count as `seen`).
    values: Vec<Vec<Value>>,
    seen: u64,
}

/// Incremental GROUP BY/aggregate state. Rows are pushed one at a time (the
/// streaming sink feeds it per batch; the materializing paths feed it the
/// collected row set), and [`Aggregator::finish`] evaluates the aggregate
/// functions. Without GROUP BY there is exactly one group — even over zero
/// rows (`COUNT(*)` of an empty table is 0, `SUM` is NULL). Groups appear in
/// first-appearance order on every path; the fast paths find them through a
/// hash map, the naive path by linear `index_cmp` search.
pub(crate) struct Aggregator<'p> {
    plan: &'p Plan,
    agg: &'p AggregatePlan,
    hashed: bool,
    predicate_eval: u64,
    row_output: u64,
    groups: Vec<Group>,
    lookup: HashMap<Vec<ValueKey>, usize>,
}

impl<'p> Aggregator<'p> {
    pub(crate) fn new(
        plan: &'p Plan,
        agg: &'p AggregatePlan,
        cost: &CostModel,
        hashed: bool,
    ) -> Self {
        Aggregator {
            plan,
            agg,
            hashed,
            predicate_eval: cost.predicate_eval,
            row_output: cost.row_output,
            groups: Vec::new(),
            lookup: HashMap::new(),
        }
    }

    pub(crate) fn push(&mut self, row: &Row, params: &[Value], meter: &mut Meter) -> FedResult<()> {
        let agg_count = self.agg.columns.len();
        meter.charge(Component::Fdbs, "Evaluate predicates", self.predicate_eval);
        let keys: Vec<Value> = self
            .agg
            .keys
            .iter()
            .map(|k| k.eval(row.values(), params))
            .collect::<FedResult<_>>()?;
        let idx = if self.hashed {
            let hkey: Vec<ValueKey> = keys.iter().map(Value::group_key).collect();
            match self.lookup.entry(hkey) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    self.groups.push(Group {
                        keys: keys.clone(),
                        values: vec![Vec::new(); agg_count],
                        seen: 0,
                    });
                    *e.insert(self.groups.len() - 1)
                }
            }
        } else {
            let found = self.groups.iter().position(|g| {
                g.keys
                    .iter()
                    .zip(&keys)
                    .all(|(a, b)| a.index_cmp(b) == std::cmp::Ordering::Equal)
            });
            match found {
                Some(i) => i,
                None => {
                    self.groups.push(Group {
                        keys: keys.clone(),
                        values: vec![Vec::new(); agg_count],
                        seen: 0,
                    });
                    self.groups.len() - 1
                }
            }
        };
        let group = &mut self.groups[idx];
        group.seen += 1;
        for (i, (col, _)) in self.agg.columns.iter().enumerate() {
            if let AggColumn::Agg { arg: Some(arg), .. } = col {
                let v = arg.eval(row.values(), params)?;
                if !v.is_null() {
                    group.values[i].push(v);
                }
            }
        }
        Ok(())
    }

    pub(crate) fn agg_plan(&self) -> &'p AggregatePlan {
        self.agg
    }

    /// Book the per-row grouping charge for a whole batch at once — one
    /// record whose amount equals what [`Aggregator::push`] books across
    /// the same rows, so virtual-time totals are identical.
    pub(crate) fn charge_batch(&self, meter: &mut Meter, rows: u64) {
        meter.charge(
            Component::Fdbs,
            "Evaluate predicates",
            self.predicate_eval * rows,
        );
    }

    /// Push one row whose key and argument expressions were already
    /// evaluated (the vectorized sink's entry). Grouping, first-appearance
    /// order, and null-skipping match [`Aggregator::push`] exactly; the
    /// caller books the charge via [`Aggregator::charge_batch`].
    pub(crate) fn push_evaled(&mut self, keys: Vec<Value>, args: Vec<Option<Value>>) {
        let agg_count = self.agg.columns.len();
        let idx = if self.hashed {
            let hkey: Vec<ValueKey> = keys.iter().map(Value::group_key).collect();
            match self.lookup.entry(hkey) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    self.groups.push(Group {
                        keys: keys.clone(),
                        values: vec![Vec::new(); agg_count],
                        seen: 0,
                    });
                    *e.insert(self.groups.len() - 1)
                }
            }
        } else {
            let found = self.groups.iter().position(|g| {
                g.keys
                    .iter()
                    .zip(&keys)
                    .all(|(a, b)| a.index_cmp(b) == std::cmp::Ordering::Equal)
            });
            match found {
                Some(i) => i,
                None => {
                    self.groups.push(Group {
                        keys: keys.clone(),
                        values: vec![Vec::new(); agg_count],
                        seen: 0,
                    });
                    self.groups.len() - 1
                }
            }
        };
        let group = &mut self.groups[idx];
        group.seen += 1;
        for (i, v) in args.into_iter().enumerate() {
            if let Some(v) = v {
                if !v.is_null() {
                    group.values[i].push(v);
                }
            }
        }
    }

    pub(crate) fn finish(mut self, meter: &mut Meter) -> FedResult<Table> {
        let agg_count = self.agg.columns.len();
        // Global aggregation over zero rows still yields one (empty) group.
        if self.groups.is_empty() && self.agg.keys.is_empty() {
            self.groups.push(Group {
                keys: vec![],
                values: vec![Vec::new(); agg_count],
                seen: 0,
            });
        }

        let mut out = Table::new(self.plan.out_schema.clone());
        for group in &self.groups {
            let mut values = Vec::with_capacity(agg_count);
            for (i, ((col, _), schema_col)) in self
                .agg
                .columns
                .iter()
                .zip(self.plan.out_schema.columns())
                .enumerate()
            {
                let v = match col {
                    AggColumn::Key(k) => group.keys[*k].clone(),
                    AggColumn::Agg { f, arg } => {
                        let collected = &group.values[i];
                        match f {
                            AggFn::Count => match arg {
                                None => Value::BigInt(group.seen as i64),
                                Some(_) => Value::BigInt(collected.len() as i64),
                            },
                            AggFn::Sum | AggFn::Avg => {
                                if collected.is_empty() {
                                    Value::Null
                                } else {
                                    match (f, schema_col.data_type) {
                                        (AggFn::Avg, _) => {
                                            let as_f: f64 =
                                                collected.iter().filter_map(Value::as_f64).sum();
                                            Value::Double(as_f / collected.len() as f64)
                                        }
                                        (_, DataType::Double) => {
                                            let as_f: f64 =
                                                collected.iter().filter_map(Value::as_f64).sum();
                                            Value::Double(as_f)
                                        }
                                        _ => {
                                            let mut acc: i64 = 0;
                                            for v in collected.iter().filter_map(Value::as_i64) {
                                                acc = acc.checked_add(v).ok_or_else(|| {
                                                    FedError::execution("SUM overflow")
                                                })?;
                                            }
                                            Value::BigInt(acc)
                                        }
                                    }
                                }
                            }
                            AggFn::Min | AggFn::Max => collected
                                .iter()
                                .cloned()
                                .reduce(|a, b| {
                                    let keep_a = match f {
                                        AggFn::Min => {
                                            a.index_cmp(&b) != std::cmp::Ordering::Greater
                                        }
                                        _ => a.index_cmp(&b) != std::cmp::Ordering::Less,
                                    };
                                    if keep_a {
                                        a
                                    } else {
                                        b
                                    }
                                })
                                .unwrap_or(Value::Null),
                        }
                    }
                };
                values.push(coerce_agg(v, schema_col.data_type)?);
            }
            meter.charge(Component::Fdbs, "Produce result rows", self.row_output);
            out.push_unchecked(Row::new(values));
        }
        Ok(out)
    }
}

/// Group the input rows by the plan's keys and evaluate the aggregate
/// columns — the collected-rows entry point over [`Aggregator`].
#[allow(clippy::too_many_arguments)]
fn aggregate_rows(
    fdbs: &Fdbs,
    plan: &Plan,
    agg: &AggregatePlan,
    rows: &[Row],
    params: &[Value],
    meter: &mut Meter,
    mode: ExecMode,
) -> FedResult<Table> {
    let mut a = Aggregator::new(plan, agg, fdbs.cost(), mode != ExecMode::Naive);
    for row in rows {
        a.push(row, params, meter)?;
    }
    a.finish(meter)
}

/// Widen an aggregate result to the declared column type. A value that
/// does not fit the declared type is a hard error — pushing it through
/// unchecked would corrupt the result table's schema invariants.
fn coerce_agg(v: Value, to: DataType) -> FedResult<Value> {
    if v.is_null() {
        return Ok(v);
    }
    implicit_cast(&v, to).map_err(|e| {
        FedError::execution(format!(
            "aggregate result {v} does not fit declared column type {to}: {e}"
        ))
    })
}

pub(crate) fn cross(prefix: Vec<Row>, rows: &[Row]) -> Vec<Row> {
    let mut out = Vec::with_capacity(prefix.len() * rows.len());
    for left in &prefix {
        for right in rows {
            out.push(left.concat(right));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Streaming executor
// ---------------------------------------------------------------------------

/// Where streaming batches come from: a bounded cursor over the leading
/// local scan when it has no join key, or the single seed row otherwise
/// (operators then cover every step including the first).
enum Source<'p> {
    Rows(Option<Vec<Row>>),
    Chunked {
        table: &'p Ident,
        pushdown: &'p Predicate,
        projection: Option<&'p [usize]>,
        next: Option<RowId>,
        started: bool,
        matched: u64,
        /// Snapshot epoch pinned at the first pull: every later chunk reads
        /// the same committed state even while writers commit in between.
        epoch: Option<TxnId>,
    },
}

impl Source<'_> {
    fn next_batch(&mut self, fdbs: &Fdbs) -> FedResult<Option<Vec<Row>>> {
        match self {
            Source::Rows(batch) => Ok(batch.take()),
            Source::Chunked {
                table,
                pushdown,
                projection,
                next,
                started,
                matched,
                epoch,
            } => {
                if *started && next.is_none() {
                    return Ok(None);
                }
                let local = fdbs.catalog().local();
                let pinned = *epoch.get_or_insert_with(|| local.snapshot_epoch());
                let start = next.unwrap_or(0);
                let (rows, cont) = local.scan_chunk(
                    table.as_str(),
                    pushdown,
                    *projection,
                    start,
                    STREAM_BATCH_ROWS,
                    pinned,
                )?;
                *started = true;
                *next = cont;
                *matched += rows.len() as u64;
                Ok(Some(rows))
            }
        }
    }

    /// Book the deferred scan charge — one record for the whole scan, same
    /// total as the materializing paths book for their single full scan.
    fn finish(&self, cost: &CostModel, meter: &mut Meter) {
        if let Source::Chunked { matched, .. } = self {
            meter.charge(
                Component::Fdbs,
                "Scan local table",
                cost.predicate_eval * matched,
            );
        }
    }
}

/// One non-blocking streaming operator. Pipeline-breaking state (hash-join
/// build sides, buffered foreign/UDTF results, probe caches) is built at
/// prepare time or on demand and tallied as materialized; batches flowing
/// through are not. Charges whose amounts depend on totals (join
/// composition, index-probe scans) are deferred to [`Op::finish`] so they
/// match the materializing paths' single-record formulas.
pub(crate) enum Op<'p> {
    HashJoin {
        build_rows: Vec<Row>,
        /// Build columns translated into the (possibly pruned) build layout.
        build_cols: Vec<usize>,
        probe: &'p [BoundExpr],
        /// Lazily built on the first non-empty probe batch, mirroring the
        /// materializing hash join's empty-input short-circuit: build keys
        /// are never evaluated when no probe row arrives.
        table: Option<HashMap<Vec<ValueKey>, Vec<usize>>>,
        out_count: usize,
    },
    IndexProbe {
        table: &'p Ident,
        pushdown: &'p Predicate,
        projection: Option<&'p [usize]>,
        build_col: usize,
        probe: &'p BoundExpr,
        cache: HashMap<ValueKey, Vec<Row>>,
        scanned_total: u64,
        out_count: usize,
    },
    Cross {
        right: Vec<Row>,
        /// Book a join-with-selection at finish (independent UDTF composed
        /// at position > 0).
        charge_select: bool,
        prefix_rows: usize,
    },
    DependentUdtf {
        udtf: &'p Udtf,
        args: &'p [BoundExpr],
        projection: Option<&'p [usize]>,
        memo_on: bool,
        memo: HashMap<Vec<(Option<DataType>, ValueKey)>, Vec<Row>>,
    },
    Filter {
        filter: &'p BoundExpr,
    },
}

impl Op<'_> {
    pub(crate) fn push(
        &mut self,
        fdbs: &Fdbs,
        batch: Vec<Row>,
        params: &[Value],
        meter: &mut Meter,
    ) -> FedResult<Vec<Row>> {
        match self {
            Op::HashJoin {
                build_rows,
                build_cols,
                probe,
                table,
                out_count,
            } => {
                if batch.is_empty() || build_rows.is_empty() {
                    return Ok(Vec::new());
                }
                if table.is_none() {
                    let mut t: HashMap<Vec<ValueKey>, Vec<usize>> = HashMap::new();
                    for (i, row) in build_rows.iter().enumerate() {
                        if let Some(key) = build_key(row, build_cols)? {
                            t.entry(key).or_default().push(i);
                        }
                    }
                    *table = Some(t);
                }
                let t = table.as_ref().expect("hash table built above");
                let mut out = Vec::new();
                for left in &batch {
                    let Some(key) = probe_key(left, probe, params)? else {
                        continue;
                    };
                    if let Some(matches) = t.get(&key) {
                        for &i in matches {
                            out.push(left.concat(&build_rows[i]));
                        }
                    }
                }
                *out_count += out.len();
                Ok(out)
            }
            Op::IndexProbe {
                table,
                pushdown,
                projection,
                build_col,
                probe,
                cache,
                scanned_total,
                out_count,
            } => {
                let local = fdbs.catalog().local();
                let mut out = Vec::new();
                for left in &batch {
                    let v = probe.eval(left.values(), params)?;
                    let Some(key) = join_key_checked(&v)? else {
                        continue;
                    };
                    let matches = match cache.entry(key) {
                        Entry::Occupied(e) => e.into_mut(),
                        Entry::Vacant(e) => {
                            let t = local.scan_eq_project(
                                table.as_str(),
                                *build_col,
                                v,
                                pushdown,
                                *projection,
                            )?;
                            *scanned_total += t.row_count() as u64;
                            let rows = t.into_rows();
                            tally_rows(meter, &rows);
                            e.insert(rows)
                        }
                    };
                    for r in matches.iter() {
                        out.push(left.concat(r));
                    }
                }
                *out_count += out.len();
                Ok(out)
            }
            Op::Cross {
                right, prefix_rows, ..
            } => {
                *prefix_rows += batch.len();
                Ok(cross(batch, right))
            }
            Op::DependentUdtf {
                udtf,
                args,
                projection,
                memo_on,
                memo,
            } => {
                let mut out = Vec::new();
                for row in &batch {
                    let arg_values: Vec<Value> = args
                        .iter()
                        .map(|a| a.eval(row.values(), params))
                        .collect::<FedResult<_>>()?;
                    let fresh;
                    let result: &[Row] = if *memo_on {
                        let key: Vec<(Option<DataType>, ValueKey)> = arg_values
                            .iter()
                            .map(|v| (v.data_type(), v.group_key()))
                            .collect();
                        match memo.entry(key) {
                            Entry::Occupied(e) => e.into_mut(),
                            Entry::Vacant(e) => {
                                let t = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                                let rows = pruned_rows(&t, *projection);
                                tally_rows(meter, &rows);
                                e.insert(rows)
                            }
                        }
                    } else {
                        let t = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                        fresh = pruned_rows(&t, *projection);
                        tally_rows(meter, &fresh);
                        &fresh
                    };
                    for rrow in result {
                        out.push(row.concat(rrow));
                    }
                }
                Ok(out)
            }
            Op::Filter { filter } => {
                let predicate_eval = fdbs.cost().predicate_eval;
                filter_rows(batch, filter, params, meter, predicate_eval)
            }
        }
    }

    /// Book the deferred composition charges so totals match the
    /// materializing paths exactly.
    pub(crate) fn finish(&self, cost: &CostModel, meter: &mut Meter) {
        match self {
            Op::HashJoin {
                build_rows,
                out_count,
                ..
            } => charge_join(meter, cost, build_rows.len() + out_count),
            Op::IndexProbe {
                scanned_total,
                out_count,
                ..
            } => {
                meter.charge(
                    Component::Fdbs,
                    "Scan local table",
                    cost.predicate_eval * scanned_total,
                );
                charge_join(meter, cost, *out_count);
            }
            Op::Cross {
                right,
                charge_select,
                prefix_rows,
            } => {
                if *charge_select {
                    meter.charge(
                        Component::Fdbs,
                        "Join with selection (compose result sets)",
                        cost.join_with_selection_setup
                            + cost.join_with_selection_per_row
                                * (*prefix_rows * right.len()) as u64,
                    );
                }
            }
            Op::DependentUdtf { .. } | Op::Filter { .. } => {}
        }
    }
}

/// Where streaming batches end up: an incremental aggregation, a sort
/// buffer (pipeline breaker), or the streaming projection with inline
/// DISTINCT and LIMIT early-exit.
pub(crate) enum Sink<'p> {
    Aggregate(Aggregator<'p>),
    Sort(Vec<Row>),
    Project {
        out: Table,
        seen: Option<HashSet<Vec<ValueKey>>>,
    },
}

/// Per-operator actuals accumulated while tracing: active virtual time,
/// wall time, and the batches/rows/bytes the operator emitted. Rendered
/// as one leaf span per operator after the pipeline drains. The leaf's
/// `start..end` window is the pipeline start plus the *accumulated active*
/// virtual time (operators interleave batch-by-batch, so per-operator
/// wall-clock windows would overlap meaninglessly); its booked vector is
/// left empty — the charges themselves are already attributed to the
/// enclosing `fdbs.execute` span, so actuals never double-count.
pub(crate) struct StreamProbe {
    name: SpanName,
    pub(crate) virt_us: u64,
    wall_ns: u64,
    batches: u64,
    rows: u64,
    bytes: u64,
    /// Planner-estimated output rows, when the plan carries estimates.
    est: Option<u64>,
}

impl StreamProbe {
    pub(crate) fn new(name: impl Into<SpanName>) -> StreamProbe {
        StreamProbe {
            name: name.into(),
            virt_us: 0,
            wall_ns: 0,
            batches: 0,
            rows: 0,
            bytes: 0,
            est: None,
        }
    }

    /// Attach the planner's row estimate; `EXPLAIN ANALYZE` reads it back
    /// as the `est` counter beside the actual `rows`.
    pub(crate) fn with_est(mut self, est: Option<f64>) -> StreamProbe {
        self.est = est.map(|e| e.round().max(0.0) as u64);
        self
    }

    fn record(&mut self, virt_us: u64, wall_ns: u64, out: &[Row]) {
        let bytes = out.iter().map(Row::approx_bytes).sum::<usize>() as u64;
        self.record_counts(virt_us, wall_ns, out.len() as u64, bytes);
    }

    pub(crate) fn record_counts(&mut self, virt_us: u64, wall_ns: u64, rows: u64, bytes: u64) {
        self.virt_us += virt_us;
        self.wall_ns += wall_ns;
        self.batches += 1;
        self.rows += rows;
        self.bytes += bytes;
    }

    pub(crate) fn into_leaf(self, start_us: u64) -> TraceNode {
        let mut node = TraceNode::leaf(Component::Fdbs, self.name, start_us);
        node.end_us = start_us + self.virt_us;
        node.wall_ns = self.wall_ns;
        node.add_counter("batches", self.batches);
        node.add_counter("rows", self.rows);
        node.add_counter("bytes", self.bytes);
        if let Some(est) = self.est {
            node.add_counter("est", est);
        }
        node
    }
}

/// Planner row estimates for the streaming operator chain, parallel to the
/// `ops` vector both streaming executors build: each step contributes its
/// composed (`join_rows`) estimate, its residual filter (when present) the
/// post-filter `out_rows`. The chunked source covers step 0's scan itself,
/// so `start` skips it and only its filter op (if any) leads the chain.
pub(crate) fn op_estimates(plan: &Plan, chunk_step0: bool, start: usize) -> Vec<Option<f64>> {
    let est = |i: usize| plan.step_estimates.get(i);
    let mut out = Vec::new();
    if chunk_step0 && plan.step_filters[0].is_some() {
        out.push(est(0).map(|e| e.out_rows));
    }
    for i in start..plan.steps.len() {
        out.push(est(i).map(|e| e.join_rows));
        if plan.step_filters[i].is_some() {
            out.push(est(i).map(|e| e.out_rows));
        }
    }
    out
}

/// Probes for the whole pipeline: source, one per operator, sink.
pub(crate) struct StreamProbes {
    pub(crate) start_us: u64,
    pub(crate) source: StreamProbe,
    pub(crate) ops: Vec<StreamProbe>,
    pub(crate) sink: StreamProbe,
}

pub(crate) fn op_probe_name(op: &Op<'_>) -> SpanName {
    match op {
        Op::HashJoin { .. } => SpanName::Static("hash-join"),
        Op::IndexProbe { table, .. } => SpanName::from(format!("index-probe {table}")),
        Op::Cross { .. } => SpanName::Static("cross"),
        Op::DependentUdtf { udtf, .. } => SpanName::from(format!("dependent-udtf {}", udtf.name)),
        Op::Filter { .. } => SpanName::Static("filter"),
    }
}

/// Start one probe measurement: a wall-clock mark (only when the trace has
/// wall sampling on — neither the untraced path nor an ordinary virtual
/// trace ever reads the OS clock here) and the current virtual time.
pub(crate) fn probe_mark(wall: bool, meter: &Meter) -> (Option<Instant>, u64) {
    (wall.then(Instant::now), meter.now_us())
}

pub(crate) fn elapsed_ns(mark: Option<Instant>) -> u64 {
    mark.map_or(0, |t| t.elapsed().as_nanos() as u64)
}

fn execute_streaming(
    fdbs: &Fdbs,
    plan: &Plan,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    let cost = fdbs.cost();

    // Source: stream the leading local scan in bounded chunks when nothing
    // joins it back to the (empty) seed row; otherwise start from the seed
    // and let the operators cover every step.
    let chunk_step0 = matches!(plan.steps.first(), Some(FromStep::ScanLocal { .. }))
        && plan.step_join_keys.first().is_some_and(|jk| jk.is_none());
    let (mut source, start) = if chunk_step0 {
        let Some(FromStep::ScanLocal {
            table, pushdown, ..
        }) = plan.steps.first()
        else {
            unreachable!("checked above");
        };
        let projection = plan.step_projections.first().and_then(|p| p.as_deref());
        (
            Source::Chunked {
                table,
                pushdown,
                projection,
                next: None,
                started: false,
                matched: 0,
                epoch: None,
            },
            1,
        )
    } else {
        (Source::Rows(Some(vec![Row::empty()])), 0)
    };

    // Prepare the operator chain. Build sides, foreign result sets, and
    // independent UDTF results are produced (and their charges booked)
    // eagerly, exactly as the materializing paths do even over an empty
    // prefix.
    let mut ops: Vec<Op<'_>> = Vec::new();
    if chunk_step0 {
        if let Some(filter) = &plan.step_filters[0] {
            ops.push(Op::Filter { filter });
        }
    }
    for (i, step) in plan.steps.iter().enumerate().skip(start) {
        let jk = plan.step_join_keys[i].as_ref();
        let proj = plan.step_projections.get(i).and_then(|p| p.as_deref());
        let access = plan.step_access.get(i).copied().unwrap_or_default();
        let op = prepare_step_op(fdbs, step, i, jk, proj, access, params, meter)
            .context(format!("evaluating FROM item {} ({step:?})", i + 1))?;
        ops.push(op);
        if let Some(filter) = &plan.step_filters[i] {
            ops.push(Op::Filter { filter });
        }
    }

    let mut sink = if let Some(agg) = &plan.aggregate {
        Sink::Aggregate(Aggregator::new(plan, agg, cost, true))
    } else if !plan.order_by.is_empty() {
        Sink::Sort(Vec::new())
    } else {
        Sink::Project {
            out: Table::new(plan.out_schema.clone()),
            seen: plan.distinct.then(HashSet::new),
        }
    };

    let mut probes = meter.tracing().then(|| StreamProbes {
        start_us: meter.now_us(),
        source: StreamProbe::new(match &source {
            Source::Chunked { table, .. } => SpanName::from(format!("scan {table}")),
            Source::Rows(_) => SpanName::Static("seed"),
        })
        .with_est(match &source {
            Source::Chunked { .. } => plan.step_estimates.first().map(|e| e.scan_rows),
            Source::Rows(_) => None,
        }),
        ops: ops
            .iter()
            .zip(op_estimates(plan, chunk_step0, start))
            .map(|(op, est)| StreamProbe::new(op_probe_name(op)).with_est(est))
            .collect(),
        sink: StreamProbe::new(
            match &sink {
                Sink::Aggregate(_) => "aggregate",
                Sink::Sort(_) => "sort",
                Sink::Project { .. } => "project",
            }
            .to_string(),
        ),
    });
    let tracing = probes.is_some();
    let wall = tracing && meter.wall_sampling();

    // Pull batches until the source runs dry or LIMIT is satisfied. When
    // LIMIT stops the pull early, upstream work (and its Fdbs-side charges)
    // that the materializing paths would still perform simply never happens.
    loop {
        let (w0, v0) = probe_mark(wall, meter);
        let Some(mut batch) = source.next_batch(fdbs)? else {
            break;
        };
        if let Some(p) = probes.as_mut() {
            p.source.record(meter.now_us() - v0, elapsed_ns(w0), &batch);
        }
        for (i, op) in ops.iter_mut().enumerate() {
            let (w0, v0) = probe_mark(wall, meter);
            batch = op
                .push(fdbs, batch, params, meter)
                .context(format!("evaluating streaming operator {}", i + 1))?;
            if let Some(p) = probes.as_mut() {
                p.ops[i].record(meter.now_us() - v0, elapsed_ns(w0), &batch);
            }
        }
        let (w0, v0) = probe_mark(wall, meter);
        let in_counts = tracing.then(|| {
            (
                batch.len() as u64,
                batch.iter().map(Row::approx_bytes).sum::<usize>() as u64,
            )
        });
        let done = sink_push(&mut sink, plan, batch, params, meter, cost)?;
        if let Some(p) = probes.as_mut() {
            let (rows, bytes) = in_counts.expect("tracing implies counts");
            p.sink
                .record_counts(meter.now_us() - v0, elapsed_ns(w0), rows, bytes);
        }
        if done {
            break;
        }
    }

    let v0 = meter.now_us();
    source.finish(cost, meter);
    if let Some(p) = probes.as_mut() {
        p.source.virt_us += meter.now_us() - v0;
    }
    for (i, op) in ops.iter().enumerate() {
        let v0 = meter.now_us();
        op.finish(cost, meter);
        if let Some(p) = probes.as_mut() {
            p.ops[i].virt_us += meter.now_us() - v0;
        }
    }

    // Emit one leaf span per pipeline stage, source to sink, under the
    // enclosing `fdbs.execute` span.
    if let Some(p) = probes.take() {
        let start = p.start_us;
        meter.span_leaf(p.source.into_leaf(start));
        for op_probe in p.ops {
            meter.span_leaf(op_probe.into_leaf(start));
        }
        meter.span_leaf(p.sink.into_leaf(start));
    }

    match sink {
        Sink::Aggregate(agg) => finish_aggregate(plan, agg.finish(meter)?, params),
        Sink::Sort(rows) => scalar_tail(fdbs, plan, rows, params, meter, ExecMode::Streaming),
        Sink::Project { out, .. } => {
            if let Some(limit) = plan.limit {
                if out.row_count() as u64 > limit {
                    let rows: Vec<Row> = out.into_rows().into_iter().take(limit as usize).collect();
                    return Ok(table_from_rows(plan.out_schema.clone(), rows));
                }
            }
            Ok(out)
        }
    }
}

/// Build the streaming operator for one lateral step, performing the
/// eager (pipeline-breaking) work up front.
#[allow(clippy::too_many_arguments)]
pub(crate) fn prepare_step_op<'p>(
    fdbs: &Fdbs,
    step: &'p FromStep,
    position: usize,
    jk: Option<&'p JoinKey>,
    proj: Option<&'p [usize]>,
    access: Access,
    params: &[Value],
    meter: &mut Meter,
) -> FedResult<Op<'p>> {
    let cost = fdbs.cost();
    match step {
        FromStep::ScanLocal {
            table,
            pushdown,
            schema,
            ..
        } => {
            if let Some(jk) = jk {
                if use_index_probe(fdbs, table, schema, jk, access)? {
                    return Ok(Op::IndexProbe {
                        table,
                        pushdown,
                        projection: proj,
                        build_col: jk.build[0],
                        probe: &jk.probe[0],
                        cache: HashMap::new(),
                        scanned_total: 0,
                        out_count: 0,
                    });
                }
                let scanned =
                    fdbs.catalog()
                        .local()
                        .scan_project(table.as_str(), pushdown, proj)?;
                meter.charge(
                    Component::Fdbs,
                    "Scan local table",
                    cost.predicate_eval * scanned.row_count() as u64,
                );
                let build_cols = build_positions(&jk.build, proj)?;
                let rows = scanned.into_rows();
                tally_rows(meter, &rows);
                return Ok(Op::HashJoin {
                    build_rows: rows,
                    build_cols,
                    probe: &jk.probe,
                    table: None,
                    out_count: 0,
                });
            }
            let scanned = fdbs
                .catalog()
                .local()
                .scan_project(table.as_str(), pushdown, proj)?;
            meter.charge(
                Component::Fdbs,
                "Scan local table",
                cost.predicate_eval * scanned.row_count() as u64,
            );
            let rows = scanned.into_rows();
            tally_rows(meter, &rows);
            Ok(Op::Cross {
                right: rows,
                charge_select: false,
                prefix_rows: 0,
            })
        }
        FromStep::ScanForeign {
            server,
            remote_name,
            pushdown,
            ..
        } => {
            let scanned = server.scan_project(remote_name, pushdown, proj)?;
            meter.charge(
                Component::Fdbs,
                format!("Subquery to SQL source {}", server.name()),
                cost.rmi_call + cost.rmi_return,
            );
            let rows = scanned.into_rows();
            tally_rows(meter, &rows);
            match jk {
                Some(jk) => Ok(Op::HashJoin {
                    build_cols: build_positions(&jk.build, proj)?,
                    build_rows: rows,
                    probe: &jk.probe,
                    table: None,
                    out_count: 0,
                }),
                None => Ok(Op::Cross {
                    right: rows,
                    charge_select: false,
                    prefix_rows: 0,
                }),
            }
        }
        FromStep::TableFunc {
            udtf,
            args,
            independent,
            ..
        } => {
            if *independent {
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(&[], params))
                    .collect::<FedResult<_>>()?;
                let result = invoke_udtf(fdbs, udtf, &arg_values, meter)?;
                let rows = pruned_rows(&result, proj);
                tally_rows(meter, &rows);
                match jk {
                    Some(jk) => Ok(Op::HashJoin {
                        build_cols: build_positions(&jk.build, proj)?,
                        build_rows: rows,
                        probe: &jk.probe,
                        table: None,
                        out_count: 0,
                    }),
                    None => Ok(Op::Cross {
                        right: rows,
                        charge_select: position > 0,
                        prefix_rows: 0,
                    }),
                }
            } else {
                Ok(Op::DependentUdtf {
                    udtf,
                    args,
                    projection: proj,
                    memo_on: fdbs.udtf_memo_enabled(),
                    memo: HashMap::new(),
                })
            }
        }
    }
}

/// Feed one batch to the sink. Returns `true` when the sink is satisfied
/// (LIMIT reached) and pulling should stop.
pub(crate) fn sink_push(
    sink: &mut Sink<'_>,
    plan: &Plan,
    batch: Vec<Row>,
    params: &[Value],
    meter: &mut Meter,
    cost: &CostModel,
) -> FedResult<bool> {
    match sink {
        Sink::Aggregate(agg) => {
            for row in &batch {
                agg.push(row, params, meter)?;
            }
            Ok(false)
        }
        Sink::Sort(rows) => {
            // ORDER BY is a pipeline breaker: the buffer is a
            // materialization point.
            tally_rows(meter, &batch);
            rows.extend(batch);
            Ok(false)
        }
        Sink::Project { out, seen } => {
            if plan.limit.is_some_and(|l| out.row_count() as u64 >= l) {
                return Ok(true);
            }
            for row in &batch {
                let values: Vec<Value> = plan
                    .projection
                    .iter()
                    .map(|(e, _)| e.eval(row.values(), params))
                    .collect::<FedResult<_>>()?;
                meter.charge(Component::Fdbs, "Produce result rows", cost.row_output);
                let keep = match seen {
                    Some(s) => s.insert(values.iter().map(Value::group_key).collect()),
                    None => true,
                };
                if keep {
                    out.push_unchecked(Row::new(values));
                    if plan.limit.is_some_and(|l| out.row_count() as u64 >= l) {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
    }
}

/// Invoke a UDTF: book its architecture charges, bind arguments, run the
/// body (recursing into the engine for SQL-bodied functions), and map the
/// result to the declared return schema.
pub fn invoke_udtf(
    fdbs: &Fdbs,
    udtf: &Udtf,
    args: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    if !meter.tracing() {
        return invoke_udtf_inner(fdbs, udtf, args, meter);
    }
    meter.span_start(Component::Udtf, fdbs.udtf_span_name(udtf));
    let result = invoke_udtf_inner(fdbs, udtf, args, meter);
    if let Ok(table) = &result {
        meter.span_counter("rows", table.row_count() as u64);
    }
    meter.span_end();
    result
}

fn invoke_udtf_inner(
    fdbs: &Fdbs,
    udtf: &Udtf,
    args: &[Value],
    meter: &mut Meter,
) -> FedResult<Table> {
    udtf.charges.book_start(meter);

    if args.len() != udtf.params.len() {
        return Err(FedError::execution(format!(
            "function {} expects {} arguments, got {}",
            udtf.name,
            udtf.params.len(),
            args.len()
        )));
    }
    let bound: Vec<Value> = args
        .iter()
        .zip(&udtf.params)
        .map(|(v, (pname, ptype))| {
            implicit_cast(v, *ptype)
                .map_err(|e| FedError::execution(format!("argument {pname} of {}: {e}", udtf.name)))
        })
        .collect::<FedResult<_>>()?;

    let raw = match &udtf.kind {
        UdtfKind::Native(body) => {
            body(&bound, meter).context(format!("invoking table function {}", udtf.name))?
        }
        UdtfKind::Sql(body) => fdbs
            .execute_function_body(udtf, body, &bound, meter)
            .context(format!("invoking SQL table function {}", udtf.name))?,
    };

    // Positional mapping onto the declared return schema (the SQL body's
    // column names need not match the declared names, as in DB2).
    if raw.schema().len() != udtf.returns.len() {
        return Err(FedError::execution(format!(
            "function {} returned {} columns but declares {}",
            udtf.name,
            raw.schema().len(),
            udtf.returns.len()
        )));
    }
    let mut mapped = Table::new(udtf.returns.clone());
    for row in raw.rows() {
        let values: Vec<Value> = row
            .values()
            .iter()
            .zip(udtf.returns.columns())
            .map(|(v, col)| {
                implicit_cast(v, col.data_type).map_err(|e| {
                    FedError::execution(format!(
                        "function {} result column {}: {e}",
                        udtf.name, col.name
                    ))
                })
            })
            .collect::<FedResult<_>>()?;
        mapped.push_unchecked(Row::new(values));
    }

    udtf.charges.book_finish(meter);
    Ok(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggColumn, AggFn, AggregatePlan};
    use fedwf_sim::CostModel;
    use fedwf_types::{Column, Ident, Schema};
    use std::sync::Arc;

    #[test]
    fn coerce_agg_rejects_lossy_results() {
        assert_eq!(
            coerce_agg(Value::Int(5), DataType::BigInt).unwrap(),
            Value::BigInt(5)
        );
        assert!(coerce_agg(Value::Double(2.5), DataType::Int).is_err());
        assert!(coerce_agg(Value::Null, DataType::Int).unwrap().is_null());
    }

    #[test]
    fn build_positions_translates_into_pruned_layout() {
        assert_eq!(build_positions(&[3], None).unwrap(), vec![3]);
        assert_eq!(build_positions(&[3], Some(&[1, 3, 5])).unwrap(), vec![1]);
        assert!(build_positions(&[2], Some(&[1, 3, 5])).is_err());
    }

    /// A DOUBLE aggregate flowing into a column declared INT must fail
    /// loudly, not be pushed unchecked into the mistyped table.
    #[test]
    fn double_aggregate_into_int_column_fails_loudly() {
        let fdbs = Fdbs::new(CostModel::zero());
        let agg = AggregatePlan {
            keys: vec![],
            columns: vec![(
                AggColumn::Agg {
                    f: AggFn::Max,
                    arg: Some(BoundExpr::Literal(Value::Double(2.5))),
                },
                Ident::new("m"),
            )],
        };
        let plan = Plan {
            steps: vec![],
            step_projections: vec![],
            step_access: vec![],
            step_estimates: vec![],
            step_filters: vec![],
            step_join_keys: vec![],
            projection: vec![],
            aggregate: Some(agg.clone()),
            distinct: false,
            order_by: vec![],
            limit: None,
            params: vec![],
            out_schema: Arc::new(Schema::new(vec![Column::new(
                Ident::new("m"),
                DataType::Int,
            )])),
        };
        let mut meter = Meter::new();
        for mode in [ExecMode::JoinAware, ExecMode::Naive] {
            let err = aggregate_rows(&fdbs, &plan, &agg, &[Row::empty()], &[], &mut meter, mode)
                .unwrap_err();
            assert!(
                err.to_string().contains("does not fit"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn integer_sum_overflow_is_an_error() {
        let fdbs = Fdbs::new(CostModel::zero());
        let agg = AggregatePlan {
            keys: vec![],
            columns: vec![(
                AggColumn::Agg {
                    f: AggFn::Sum,
                    arg: Some(BoundExpr::Column {
                        index: 0,
                        data_type: DataType::BigInt,
                    }),
                },
                Ident::new("s"),
            )],
        };
        let plan = Plan {
            steps: vec![],
            step_projections: vec![],
            step_access: vec![],
            step_estimates: vec![],
            step_filters: vec![],
            step_join_keys: vec![],
            projection: vec![],
            aggregate: Some(agg.clone()),
            distinct: false,
            order_by: vec![],
            limit: None,
            params: vec![],
            out_schema: Arc::new(Schema::new(vec![Column::new(
                Ident::new("s"),
                DataType::BigInt,
            )])),
        };
        let rows = vec![
            Row::new(vec![Value::BigInt(i64::MAX)]),
            Row::new(vec![Value::BigInt(1)]),
        ];
        let mut meter = Meter::new();
        for mode in [ExecMode::JoinAware, ExecMode::Naive] {
            let err = aggregate_rows(&fdbs, &plan, &agg, &rows, &[], &mut meter, mode).unwrap_err();
            assert!(err.to_string().contains("SUM overflow"), "{err}");
        }
    }
}
