//! The cost-based optimizer: [`LogicalPlan`] → executable [`Plan`].
//!
//! The binder ([`crate::plan::PlanBuilder::bind_logical`]) resolves names
//! and folds expressions but places nothing; this module turns its output
//! into a physical plan in four stages:
//!
//! 1. **Join order.** Under [`PlannerMode::CostBased`] the lateral chain is
//!    reordered greedily: at each position pick the remaining step that
//!    minimizes the estimated prefix cardinality, using table statistics
//!    ([`crate::Catalog::analyze`]) or live row counts. Dependent table
//!    functions are *barriers* — they stay in place and only the runs of
//!    steps between them are permuted, which keeps the multiset of prefix
//!    rows reaching each dependent UDTF (and hence its invocation charges)
//!    invariant. Plans with `LIMIT` are never reordered: the row *prefix* a
//!    limit cuts off is order-sensitive.
//! 2. **Conjunct placement.** The same pushdown / equi-join-extraction /
//!    residual-filter classification the syntactic binder always did
//!    (`plan::place_bound_conjunct`), applied to the chosen order.
//! 3. **Cardinality estimation.** Selectivities from [`crate::stats`]
//!    annotate every step with scan/join/output row estimates — in *both*
//!    modes, so `EXPLAIN` and the `EXPLAIN ANALYZE` q-error report work
//!    regardless of the planner.
//! 4. **Access paths.** Cost-based plans pick index-probe vs hash join per
//!    step from the estimates; syntactic plans leave the executor's own
//!    heuristic in charge ([`Access::Auto`]).

use fedwf_relstore::{CmpOp, Predicate};
use fedwf_sql::BinaryOp;
use fedwf_types::{DataType, FedResult, Value};

use std::sync::Arc;

use crate::catalog::Catalog;
use crate::expr::BoundExpr;
use crate::plan::{
    place_bound_conjunct, step_offsets, Access, AggColumn, FromStep, JoinKey, LogicalPlan, Plan,
    StepEstimate,
};
use crate::stats::{
    self, TableStatistics, DEFAULT_EQ_SELECTIVITY, DEFAULT_NULL_FRACTION, DEFAULT_RANGE_SELECTIVITY,
};

/// Which planner turns a logical plan into a physical one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// DB2-style syntactic planning: steps execute in FROM-clause order and
    /// the executor's own heuristics pick access paths. The pre-optimizer
    /// behavior, kept as the reference point.
    Syntactic,
    /// Reorder joins by estimated cardinality and choose access paths by
    /// estimated cost.
    #[default]
    CostBased,
}

impl std::fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannerMode::Syntactic => write!(f, "syntactic"),
            PlannerMode::CostBased => write!(f, "cost-based"),
        }
    }
}

/// Row-count guess for a table with neither statistics nor a live count.
const DEFAULT_TABLE_ROWS: f64 = 1000.0;

/// Turn a bound logical plan into an executable physical plan.
pub fn optimize(catalog: &Catalog, logical: LogicalPlan, mode: PlannerMode) -> FedResult<Plan> {
    let LogicalPlan {
        mut steps,
        mut conjuncts,
        mut projection,
        mut aggregate,
        distinct,
        mut order_by,
        limit,
        params,
        out_schema,
    } = logical;

    // 1. Join order. Only the cost-based planner reorders, never across a
    // dependent-UDTF barrier, and never under LIMIT.
    if mode == PlannerMode::CostBased && steps.len() > 1 && limit.is_none() {
        let est = Estimator::new(catalog, &steps);
        let order = choose_order(&est, &steps, &conjuncts);
        if order.iter().enumerate().any(|(new, &old)| new != old) {
            let widths: Vec<usize> = steps.iter().map(|s| s.schema().len()).collect();
            let remap = permuted_remap(&est.offsets, &widths, &order);
            let remap_fn = |c: usize| remap[c];
            let mut by_old: Vec<Option<FromStep>> = steps.into_iter().map(Some).collect();
            steps = order
                .iter()
                .map(|&old| {
                    by_old[old]
                        .take()
                        .expect("each step appears once in the order")
                })
                .collect();
            for c in conjuncts.iter_mut() {
                *c = c.map_columns(&remap_fn);
            }
            for (e, _) in projection.iter_mut() {
                *e = e.map_columns(&remap_fn);
            }
            if let Some(agg) = aggregate.as_mut() {
                for k in agg.keys.iter_mut() {
                    *k = k.map_columns(&remap_fn);
                }
                for (col, _) in agg.columns.iter_mut() {
                    if let AggColumn::Agg { arg: Some(a), .. } = col {
                        *a = a.map_columns(&remap_fn);
                    }
                }
                // Aggregate ORDER BY indexes the *output* layout — untouched.
            } else {
                for (e, _) in order_by.iter_mut() {
                    *e = e.map_columns(&remap_fn);
                }
            }
            for step in steps.iter_mut() {
                if let FromStep::TableFunc { args, .. } = step {
                    for a in args.iter_mut() {
                        *a = a.map_columns(&remap_fn);
                    }
                }
            }
        }
    }

    // 2. Conjunct placement over the chosen order.
    let offsets = step_offsets(&steps);
    let mut step_filters: Vec<Option<BoundExpr>> = vec![None; steps.len()];
    let mut step_join_keys: Vec<Option<JoinKey>> = vec![None; steps.len()];
    for bound in conjuncts {
        place_bound_conjunct(
            bound,
            &mut steps,
            &offsets,
            &mut step_filters,
            &mut step_join_keys,
        );
    }

    // 3. Cardinality estimates — in both modes, so EXPLAIN shows `est=` and
    // EXPLAIN ANALYZE can report q-errors whichever planner compiled.
    let est = Estimator::new(catalog, &steps);
    let step_estimates = est.estimate(&steps, &step_filters, &step_join_keys);

    // 4. Access paths.
    let step_access = match mode {
        PlannerMode::Syntactic => vec![Access::Auto; steps.len()],
        PlannerMode::CostBased => choose_access(catalog, &steps, &step_join_keys, &step_estimates),
    };

    Ok(Plan {
        step_projections: vec![None; steps.len()],
        step_access,
        step_estimates,
        steps,
        step_filters,
        step_join_keys,
        projection,
        aggregate,
        distinct,
        order_by,
        limit,
        params,
        out_schema,
    })
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

/// Per-step statistics context over one concatenated step layout.
struct Estimator {
    offsets: Vec<usize>,
    widths: Vec<usize>,
    /// Catalog statistics per step (scans only; `None` for table functions
    /// or unanalyzed tables).
    stats: Vec<Option<Arc<TableStatistics>>>,
    /// Base cardinality per step, before any pushdown: statistics row count,
    /// else a live count, else [`DEFAULT_TABLE_ROWS`]. For table functions
    /// this is the declared fan-out (rows per invocation).
    base: Vec<f64>,
}

impl Estimator {
    fn new(catalog: &Catalog, steps: &[FromStep]) -> Estimator {
        let mut stats = Vec::with_capacity(steps.len());
        let mut base = Vec::with_capacity(steps.len());
        for step in steps {
            let (st, rows) = match step {
                FromStep::ScanLocal { table, .. } => {
                    let st = catalog.statistics(table);
                    let rows = st
                        .as_ref()
                        .map(|s| s.row_count as f64)
                        .or_else(|| {
                            catalog
                                .local()
                                .table_stats(table.as_str())
                                .ok()
                                .map(|t| t.row_count as f64)
                        })
                        .unwrap_or(DEFAULT_TABLE_ROWS);
                    (st, rows)
                }
                FromStep::ScanForeign {
                    catalog_name,
                    server,
                    remote_name,
                    ..
                } => {
                    let st = catalog.statistics(catalog_name);
                    let rows = st
                        .as_ref()
                        .map(|s| s.row_count as f64)
                        .or_else(|| server.estimate_rows(remote_name).ok().map(|n| n as f64))
                        .unwrap_or(DEFAULT_TABLE_ROWS);
                    (st, rows)
                }
                FromStep::TableFunc { udtf, .. } => (None, udtf.fanout),
            };
            stats.push(st);
            base.push(rows);
        }
        Estimator {
            offsets: step_offsets(steps),
            widths: steps.iter().map(|s| s.schema().len()).collect(),
            stats,
            base,
        }
    }

    /// Step owning a concatenated-layout column index.
    fn step_of(&self, col: usize) -> usize {
        (0..self.offsets.len())
            .position(|i| col >= self.offsets[i] && col < self.offsets[i] + self.widths[i])
            .expect("bound column belongs to a step")
    }

    /// Statistics entry + step-local index for a concatenated-layout column.
    fn col_stats(&self, col: usize) -> Option<(&TableStatistics, usize)> {
        let step = self.step_of(col);
        self.stats[step]
            .as_deref()
            .map(|s| (s, col - self.offsets[step]))
    }

    /// NDV of a concatenated-layout column, when statistics know it.
    fn ndv(&self, col: usize) -> Option<usize> {
        let (s, local) = self.col_stats(col)?;
        s.ndv(local)
    }

    /// NDV of a probe expression: known only for plain column references.
    fn expr_ndv(&self, e: &BoundExpr) -> Option<usize> {
        match e {
            BoundExpr::Column { index, .. } => self.ndv(*index),
            _ => None,
        }
    }

    /// NDV of a step-local build column of step `i`.
    fn local_ndv(&self, i: usize, local: usize) -> Option<usize> {
        self.stats[i].as_deref().and_then(|s| s.ndv(local))
    }

    /// Rows step `i` itself produces, after its storage pushdown.
    fn scan_rows(&self, i: usize, step: &FromStep) -> f64 {
        match step {
            FromStep::ScanLocal { pushdown, .. } | FromStep::ScanForeign { pushdown, .. } => {
                (self.base[i] * stats::predicate_selectivity(pushdown, self.stats[i].as_deref()))
                    .max(0.0)
            }
            FromStep::TableFunc { .. } => self.base[i],
        }
    }

    /// Output of composing step `i` with a `prefix`-row prefix through its
    /// extracted equi-join key. The first key pair uses the NDV formula;
    /// additional key pairs multiply their own equality selectivity.
    fn join_rows(&self, i: usize, jk: &JoinKey, prefix: f64, scan_rows: f64) -> f64 {
        let mut rows = stats::join_cardinality(
            prefix,
            scan_rows,
            self.expr_ndv(&jk.probe[0]),
            self.local_ndv(i, jk.build[0]),
        );
        for k in 1..jk.build.len() {
            rows *=
                eq_pair_selectivity(self.expr_ndv(&jk.probe[k]), self.local_ndv(i, jk.build[k]));
        }
        rows.max(0.0)
    }

    /// Walk the placed chain and annotate every step.
    fn estimate(
        &self,
        steps: &[FromStep],
        step_filters: &[Option<BoundExpr>],
        step_join_keys: &[Option<JoinKey>],
    ) -> Vec<StepEstimate> {
        let mut out = Vec::with_capacity(steps.len());
        let mut prefix = 1.0f64;
        for (i, step) in steps.iter().enumerate() {
            let scan_rows = self.scan_rows(i, step);
            let join_rows = match (&step_join_keys[i], step) {
                // Dependent table functions never carry a join key: one
                // invocation per prefix row, fan-out rows each.
                (Some(jk), _) => self.join_rows(i, jk, prefix, scan_rows),
                (None, _) => prefix * scan_rows,
            };
            let out_rows = match &step_filters[i] {
                Some(f) => (join_rows * self.selectivity(f)).max(0.0),
                None => join_rows,
            };
            out.push(StepEstimate {
                scan_rows,
                join_rows,
                out_rows,
            });
            prefix = out_rows;
        }
        out
    }

    /// Selectivity of a bound predicate — the residual-filter analogue of
    /// [`stats::predicate_selectivity`], and the greedy planner's uniform
    /// scorer (a cross-step `a = b` equality scores as a join selectivity
    /// through the NDV rule).
    fn selectivity(&self, e: &BoundExpr) -> f64 {
        match e {
            BoundExpr::Binary { left, op, right } => match op {
                BinaryOp::And => self.selectivity(left) * self.selectivity(right),
                BinaryOp::Or => {
                    let (a, b) = (self.selectivity(left), self.selectivity(right));
                    stats::clamp01(a + b - a * b)
                }
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => self.cmp_selectivity(left, *op, right),
                _ => 1.0,
            },
            BoundExpr::Not(inner) => stats::clamp01(1.0 - self.selectivity(inner)),
            BoundExpr::IsNull { input, negated } => match &**input {
                BoundExpr::Column { index, .. } => match self.col_stats(*index) {
                    Some((s, local)) => s.null_selectivity(local, *negated),
                    None if *negated => 1.0 - DEFAULT_NULL_FRACTION,
                    None => DEFAULT_NULL_FRACTION,
                },
                _ => 0.5,
            },
            BoundExpr::Literal(v) => match v {
                Value::Boolean(true) => 1.0,
                Value::Boolean(false) | Value::Null => 0.0,
                _ => 1.0,
            },
            _ => 0.5,
        }
    }

    fn cmp_selectivity(&self, left: &BoundExpr, op: BinaryOp, right: &BoundExpr) -> f64 {
        let Some(cmp) = to_cmp_op(op) else {
            return 0.5;
        };
        match (left, right) {
            (BoundExpr::Column { index, .. }, BoundExpr::Literal(v)) => {
                self.col_cmp(*index, cmp, v)
            }
            (BoundExpr::Literal(v), BoundExpr::Column { index, .. }) => {
                self.col_cmp(*index, flip_cmp(cmp), v)
            }
            (BoundExpr::Column { index: a, .. }, BoundExpr::Column { index: b, .. })
                if op == BinaryOp::Eq =>
            {
                eq_pair_selectivity(self.ndv(*a), self.ndv(*b))
            }
            _ => match op {
                BinaryOp::Eq => DEFAULT_EQ_SELECTIVITY,
                BinaryOp::NotEq => 1.0 - DEFAULT_EQ_SELECTIVITY,
                _ => DEFAULT_RANGE_SELECTIVITY,
            },
        }
    }

    fn col_cmp(&self, index: usize, op: CmpOp, v: &Value) -> f64 {
        match self.col_stats(index) {
            Some((s, local)) => s.cmp_selectivity(local, op, v),
            None => match op {
                CmpOp::Eq => DEFAULT_EQ_SELECTIVITY,
                CmpOp::NotEq => 1.0 - DEFAULT_EQ_SELECTIVITY,
                _ => DEFAULT_RANGE_SELECTIVITY,
            },
        }
    }
}

/// Selectivity of one `a = b` column pair from the two NDVs.
fn eq_pair_selectivity(a: Option<usize>, b: Option<usize>) -> f64 {
    match (a, b) {
        (Some(x), Some(y)) => 1.0 / x.max(y).max(1) as f64,
        (Some(x), None) | (None, Some(x)) => 1.0 / x.max(1) as f64,
        (None, None) => DEFAULT_EQ_SELECTIVITY,
    }
}

fn to_cmp_op(op: BinaryOp) -> Option<CmpOp> {
    Some(match op {
        BinaryOp::Eq => CmpOp::Eq,
        BinaryOp::NotEq => CmpOp::NotEq,
        BinaryOp::Lt => CmpOp::Lt,
        BinaryOp::LtEq => CmpOp::LtEq,
        BinaryOp::Gt => CmpOp::Gt,
        BinaryOp::GtEq => CmpOp::GtEq,
        _ => return None,
    })
}

fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::LtEq => CmpOp::GtEq,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::GtEq => CmpOp::LtEq,
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Join ordering
// ---------------------------------------------------------------------------

/// Greedy join order over the syntactic step numbering: within each run of
/// steps between dependent-UDTF barriers, repeatedly pick the remaining step
/// that minimizes the estimated prefix cardinality. Ties keep syntactic
/// order, so the greedy pass is the identity unless it finds a strictly
/// cheaper prefix. Returns `order[new_position] = syntactic_index`.
fn choose_order(est: &Estimator, steps: &[FromStep], conjuncts: &[BoundExpr]) -> Vec<usize> {
    let n = steps.len();
    // Steps each conjunct references, in syntactic numbering.
    let conj_steps: Vec<Vec<usize>> = conjuncts
        .iter()
        .map(|c| {
            let mut v: Vec<usize> = c
                .column_indexes()
                .into_iter()
                .map(|col| est.step_of(col))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut in_prefix = vec![false; n];
    let mut applied = vec![false; conjuncts.len()];
    let mut prefix_rows = 1.0f64;

    // Fold every conjunct whose steps are now all in the prefix into the
    // running cardinality — mirrors the factors `candidate_rows` charges.
    let absorb = |in_prefix: &[bool], applied: &mut [bool], prefix_rows: &mut f64| {
        for (k, cs) in conj_steps.iter().enumerate() {
            if !applied[k] && cs.iter().all(|&s| in_prefix[s]) {
                applied[k] = true;
                *prefix_rows = (*prefix_rows * est.selectivity(&conjuncts[k])).max(0.0);
            }
        }
    };

    let mut seg_start = 0usize;
    for idx in 0..=n {
        let at_barrier = idx == n
            || matches!(
                steps[idx],
                FromStep::TableFunc {
                    independent: false,
                    ..
                }
            );
        if !at_barrier {
            continue;
        }
        // Greedily order the movable run [seg_start, idx).
        let mut remaining: Vec<usize> = (seg_start..idx).collect();
        while !remaining.is_empty() {
            let mut best: Option<(usize, f64)> = None; // (position in `remaining`, est rows)
            for (pos, &cand) in remaining.iter().enumerate() {
                let mut rows = prefix_rows * est.base[cand];
                for (k, cs) in conj_steps.iter().enumerate() {
                    if !applied[k] && cs.iter().all(|&s| s == cand || in_prefix[s]) {
                        rows *= est.selectivity(&conjuncts[k]);
                    }
                }
                // Strict `<` keeps the earliest syntactic candidate on ties.
                match best {
                    Some((_, b)) if rows >= b => {}
                    _ => best = Some((pos, rows.max(0.0))),
                }
            }
            let (pos, rows) = best.expect("remaining is non-empty");
            let cand = remaining.remove(pos);
            order.push(cand);
            in_prefix[cand] = true;
            prefix_rows = rows;
            absorb(&in_prefix, &mut applied, &mut prefix_rows);
        }
        if idx < n {
            // Pass the barrier itself: one invocation per prefix row.
            order.push(idx);
            in_prefix[idx] = true;
            prefix_rows *= est.base[idx];
            absorb(&in_prefix, &mut applied, &mut prefix_rows);
            seg_start = idx + 1;
        }
    }
    order
}

/// Column remap for a step permutation: `remap[syntactic_index]` is the
/// column's index in the permuted concatenated layout.
fn permuted_remap(offsets: &[usize], widths: &[usize], order: &[usize]) -> Vec<usize> {
    let total: usize = widths.iter().sum();
    let mut remap = vec![0usize; total];
    let mut new_off = 0usize;
    for &old in order {
        for local in 0..widths[old] {
            remap[offsets[old] + local] = new_off + local;
        }
        new_off += widths[old];
    }
    remap
}

// ---------------------------------------------------------------------------
// Access-path choice
// ---------------------------------------------------------------------------

/// Pick the composition strategy per step from the estimates. Mirrors the
/// executor's indexability gate (single non-DOUBLE key served by an index),
/// then compares the estimated probe count (prefix rows) against the
/// estimated scan size: fewer probes than scanned rows → index probes win,
/// otherwise one hash build is cheaper. The executor re-checks indexability
/// at run time, so a stale [`Access::IndexProbe`] degrades to a hash join
/// rather than failing.
fn choose_access(
    catalog: &Catalog,
    steps: &[FromStep],
    step_join_keys: &[Option<JoinKey>],
    estimates: &[StepEstimate],
) -> Vec<Access> {
    steps
        .iter()
        .enumerate()
        .map(|(i, step)| {
            let Some(jk) = &step_join_keys[i] else {
                return Access::Auto;
            };
            let FromStep::ScanLocal { table, schema, .. } = step else {
                return Access::Auto;
            };
            let indexable = jk.build.len() == 1
                && schema.columns()[jk.build[0]].data_type != DataType::Double
                && jk.probe[0].data_type() != Some(DataType::Double)
                && catalog
                    .local()
                    .index_serves(table.as_str(), &Predicate::eq(jk.build[0], Value::Null))
                    .unwrap_or(false);
            if !indexable {
                return Access::Auto;
            }
            let prefix_rows = if i == 0 {
                1.0
            } else {
                estimates[i - 1].out_rows
            };
            if prefix_rows < estimates[i].scan_rows {
                Access::IndexProbe
            } else {
                Access::Hash
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use crate::udtf::Udtf;
    use fedwf_sql::{parse_statement, SelectStmt, Statement};
    use fedwf_types::{Ident, Row, Schema, Table};

    fn select(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            _ => panic!("expected select"),
        }
    }

    /// Big (2000 rows, unique A), Wide (1000 rows, unique B), Tiny (5 rows,
    /// A and B in their ranges) — plus a dependent UDTF `Dep`.
    fn federation() -> Catalog {
        let cat = Catalog::new();
        cat.local()
            .create_table(
                "Big",
                Arc::new(Schema::of(&[("A", DataType::Int), ("P", DataType::Int)])),
            )
            .unwrap();
        cat.local()
            .create_table("Wide", Arc::new(Schema::of(&[("B", DataType::Int)])))
            .unwrap();
        cat.local()
            .create_table(
                "Tiny",
                Arc::new(Schema::of(&[("A", DataType::Int), ("B", DataType::Int)])),
            )
            .unwrap();
        for i in 0..2000 {
            cat.local()
                .insert("Big", Row::new(vec![Value::Int(i), Value::Int(i % 7)]))
                .unwrap();
        }
        for i in 0..1000 {
            cat.local()
                .insert("Wide", Row::new(vec![Value::Int(i)]))
                .unwrap();
        }
        for i in 0..5 {
            cat.local()
                .insert("Tiny", Row::new(vec![Value::Int(i * 3), Value::Int(i * 2)]))
                .unwrap();
        }
        cat.register_udtf(
            Udtf::native(
                "Dep",
                vec![(Ident::new("X"), DataType::Int)],
                Arc::new(Schema::of(&[("Y", DataType::Int)])),
                |args, _m| {
                    Ok(Table::scalar(
                        "Y",
                        args[0]
                            .as_i64()
                            .map(|v| Value::Int(v as i32 + 1))
                            .unwrap_or(Value::Null),
                    ))
                },
            )
            .with_fanout(1.0),
        )
        .unwrap();
        cat.analyze().unwrap();
        cat
    }

    fn aliases(plan: &Plan) -> Vec<String> {
        plan.steps.iter().map(|s| s.alias().to_string()).collect()
    }

    fn optimize_sql(cat: &Catalog, sql: &str, mode: PlannerMode) -> Plan {
        let logical = PlanBuilder::new(cat).bind_logical(&select(sql)).unwrap();
        optimize(cat, logical, mode).unwrap()
    }

    const THREE_WAY: &str = "SELECT T.A FROM Big AS H, Wide AS W, Tiny AS T \
                             WHERE H.A = T.A AND W.B = T.B";

    #[test]
    fn syntactic_mode_keeps_from_order() {
        let cat = federation();
        let plan = optimize_sql(&cat, THREE_WAY, PlannerMode::Syntactic);
        assert_eq!(aliases(&plan), vec!["H", "W", "T"]);
        assert!(plan.step_access.iter().all(|a| *a == Access::Auto));
        // Both join conjuncts target the last step (multi-key join key).
        let jk = plan.step_join_keys[2].as_ref().unwrap();
        assert_eq!(jk.build.len(), 2);
    }

    #[test]
    fn cost_based_puts_the_tiny_table_first() {
        let cat = federation();
        let plan = optimize_sql(&cat, THREE_WAY, PlannerMode::CostBased);
        assert_eq!(aliases(&plan)[0], "T", "tiny table leads");
        // Each later step now joins on its own single key.
        assert!(plan.step_join_keys[1]
            .as_ref()
            .is_some_and(|jk| jk.build.len() == 1));
        assert!(plan.step_join_keys[2]
            .as_ref()
            .is_some_and(|jk| jk.build.len() == 1));
        // The linear order is estimated far cheaper than the syntactic
        // cross product.
        let syntactic = optimize_sql(&cat, THREE_WAY, PlannerMode::Syntactic);
        let cb_rows = plan.step_estimates[1].out_rows;
        let syn_rows = syntactic.step_estimates[1].out_rows;
        assert!(
            cb_rows * 100.0 < syn_rows,
            "cost-based intermediate {cb_rows} should be far below syntactic {syn_rows}"
        );
    }

    #[test]
    fn limit_blocks_reordering() {
        let cat = federation();
        let plan = optimize_sql(
            &cat,
            "SELECT T.A FROM Big AS H, Wide AS W, Tiny AS T \
             WHERE H.A = T.A AND W.B = T.B LIMIT 3",
            PlannerMode::CostBased,
        );
        assert_eq!(aliases(&plan), vec!["H", "W", "T"]);
    }

    #[test]
    fn dependent_udtf_is_a_reorder_barrier() {
        let cat = federation();
        // Dep depends on H, so H must stay before it; Tiny/Wide after the
        // barrier may still swap among themselves but never cross it.
        let plan = optimize_sql(
            &cat,
            "SELECT D.Y FROM Big AS H, TABLE (Dep(H.A)) AS D, Big AS H2, Tiny AS T \
             WHERE H2.A = T.A",
            PlannerMode::CostBased,
        );
        let names = aliases(&plan);
        assert_eq!(names[0], "H");
        assert_eq!(names[1], "D");
        assert_eq!(names[2], "T", "tiny table leads the post-barrier segment");
        assert_eq!(names[3], "H2");
    }

    #[test]
    fn estimates_cover_every_step_and_track_stats() {
        let cat = federation();
        let plan = optimize_sql(
            &cat,
            "SELECT H.A FROM Big AS H WHERE H.A < 500",
            PlannerMode::CostBased,
        );
        assert_eq!(plan.step_estimates.len(), 1);
        let e = plan.step_estimates[0];
        // 500/1999 of 2000 rows ≈ 500; interpolation should land close.
        assert!(e.scan_rows > 400.0 && e.scan_rows < 600.0, "{e:?}");
        assert_eq!(e.join_rows, e.scan_rows);
    }

    #[test]
    fn reorder_remaps_projection_and_filters() {
        let cat = federation();
        let plan = optimize_sql(&cat, THREE_WAY, PlannerMode::CostBased);
        // T is now step 0, so the projected T.A must be column 0.
        assert_eq!(
            plan.projection[0].0,
            BoundExpr::Column {
                index: 0,
                data_type: DataType::Int
            }
        );
    }

    #[test]
    fn access_choice_prefers_index_probe_for_small_prefixes() {
        let cat = federation();
        cat.local()
            .create_index("Big", "pk_big", "A", fedwf_relstore::IndexKind::Unique)
            .unwrap();
        let plan = optimize_sql(&cat, THREE_WAY, PlannerMode::CostBased);
        // Big joins a ~5-row prefix against 2000 indexed rows.
        let big_pos = aliases(&plan).iter().position(|a| a == "H").unwrap();
        assert_eq!(plan.step_access[big_pos], Access::IndexProbe);
    }

    #[test]
    fn access_choice_prefers_hash_for_large_prefixes() {
        let cat = federation();
        cat.local()
            .create_index("Tiny", "pk_tiny", "A", fedwf_relstore::IndexKind::Unique)
            .unwrap();
        // Prefix (Big, 2000 rows) is much larger than Tiny (5 rows): build
        // the hash table over Tiny instead of probing its index 2000 times.
        let plan = optimize_sql(
            &cat,
            "SELECT T.A FROM Big AS H, Tiny AS T WHERE H.A = T.A LIMIT 10000",
            PlannerMode::CostBased,
        );
        assert_eq!(aliases(&plan), vec!["H", "T"], "LIMIT pins the order");
        assert_eq!(plan.step_access[1], Access::Hash);
    }
}
