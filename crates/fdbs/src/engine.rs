//! The FDBS facade: statement execution, plan cache, SQL UDTF bodies.

use std::collections::HashMap;
use std::sync::Arc;

use fedwf_sim::{Component, CostModel, Meter, SpanNameCache};
use fedwf_sql::{parse_statement, parse_statements, Expr, SelectStmt, Statement};
use fedwf_types::sync::RwLock;
use fedwf_types::{implicit_cast, DataType, FedError, FedResult, Ident, Row, Schema, Table, Value};

use crate::catalog::Catalog;
use crate::exec::{execute_plan, invoke_udtf, ExecMode};
use crate::optimizer::{optimize, PlannerMode};
use crate::plan::{FromStep, Plan, PlanBuilder};
use crate::udtf::{ChargeItem, ChargeSpec, Udtf, UdtfKind};

/// Bound host variables for one statement: the typed signature, the values
/// in slot order, and the derived plan-cache key.
type BoundHostParams = (Vec<(Ident, DataType)>, Vec<Value>, String);

/// The complete execution configuration of an engine, set atomically as one
/// value. Built with chainable setters from [`ExecOptions::default`]:
///
/// ```
/// use fedwf_fdbs::{ExecOptions, PlannerMode};
/// let opts = ExecOptions::default()
///     .vectorized(false)
///     .planner(PlannerMode::Syntactic);
/// assert!(opts.projection_pruning);
/// ```
///
/// [`ExecOptions::cache_tag`] is the single configuration component of the
/// plan-cache key, so a plan bound under one configuration is never served
/// to an engine configured another way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Which executor strategy [`execute_plan`] uses: streaming (default),
    /// the materializing join-aware path, or the naive reference path.
    pub mode: ExecMode,
    /// Run [`ExecMode::Streaming`] over typed column batches (the default).
    /// Off gives the row-at-a-time streaming executor — kept callable as
    /// the E17 comparison baseline.
    pub vectorized: bool,
    /// Prune unreferenced columns out of FROM steps at bind time and push
    /// the projection into the scans. Off for the unpruned baselines in E14.
    pub projection_pruning: bool,
    /// Memoize dependent UDTF invocations within one step by argument
    /// tuple. Off for experiments that need per-prefix-row cost semantics.
    pub udtf_memo: bool,
    /// Which planner turns bound statements into physical plans: cost-based
    /// (default) or the syntactic FROM-order reference.
    pub planner: PlannerMode,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            mode: ExecMode::Streaming,
            vectorized: true,
            projection_pruning: true,
            udtf_memo: true,
            planner: PlannerMode::CostBased,
        }
    }
}

impl ExecOptions {
    /// Use `exec_mode` as the executor strategy.
    pub fn mode(mut self, mode: ExecMode) -> ExecOptions {
        self.mode = mode;
        self
    }

    /// Toggle columnar-batch streaming execution.
    pub fn vectorized(mut self, enabled: bool) -> ExecOptions {
        self.vectorized = enabled;
        self
    }

    /// Toggle bind-time projection pruning.
    pub fn projection_pruning(mut self, enabled: bool) -> ExecOptions {
        self.projection_pruning = enabled;
        self
    }

    /// Toggle the dependent-UDTF memo.
    pub fn udtf_memo(mut self, enabled: bool) -> ExecOptions {
        self.udtf_memo = enabled;
        self
    }

    /// Use `planner` to turn bound statements into physical plans.
    pub fn planner(mut self, planner: PlannerMode) -> ExecOptions {
        self.planner = planner;
        self
    }

    /// The plan-cache key component encoding this configuration.
    pub fn cache_tag(&self) -> String {
        format!(
            "m{}v{}p{}u{}q{}",
            match self.mode {
                ExecMode::Streaming => 's',
                ExecMode::JoinAware => 'j',
                ExecMode::Naive => 'n',
            },
            self.vectorized as u8,
            self.projection_pruning as u8,
            self.udtf_memo as u8,
            match self.planner {
                PlannerMode::Syntactic => 's',
                PlannerMode::CostBased => 'c',
            },
        )
    }
}

/// The federated database system engine.
pub struct Fdbs {
    catalog: Catalog,
    cost: CostModel,
    plan_cache: RwLock<HashMap<String, Arc<Plan>>>,
    /// The engine's execution configuration; see [`ExecOptions`].
    options: RwLock<ExecOptions>,
    /// Interned `udtf {name}` / `fdbs.fn {name}` span names.
    udtf_spans: SpanNameCache<Ident>,
    fn_spans: SpanNameCache<Ident>,
}

impl Default for Fdbs {
    fn default() -> Fdbs {
        Fdbs::new(CostModel::default())
    }
}

impl Fdbs {
    pub fn new(cost: CostModel) -> Fdbs {
        Fdbs::with_local(cost, fedwf_relstore::Database::new("fdbs"))
    }

    /// An engine whose local store is supplied by the caller — durable
    /// (WAL-backed, possibly group-commit) when the integration server is
    /// configured with one.
    pub fn with_local(cost: CostModel, local: fedwf_relstore::Database) -> Fdbs {
        Fdbs {
            catalog: Catalog::with_local(local),
            cost,
            plan_cache: RwLock::new(HashMap::new()),
            options: RwLock::new(ExecOptions::default()),
            udtf_spans: SpanNameCache::new(),
            fn_spans: SpanNameCache::new(),
        }
    }

    /// An engine with a non-default execution configuration.
    pub fn with_options(cost: CostModel, options: ExecOptions) -> Fdbs {
        let f = Fdbs::new(cost);
        f.set_options(options);
        f
    }

    /// The interned `udtf {name}` span name for a function (pub(crate):
    /// the executor opens this span on every traced invocation).
    pub(crate) fn udtf_span_name(&self, udtf: &Udtf) -> fedwf_sim::SpanName {
        self.udtf_spans
            .get(&udtf.name, Ident::clone, || format!("udtf {}", udtf.name))
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The engine's current execution configuration.
    pub fn options(&self) -> ExecOptions {
        *self.options.read()
    }

    /// Replace the execution configuration wholesale. Cached plans are
    /// keyed on [`ExecOptions::cache_tag`], so reconfiguring never serves
    /// a plan bound under a different configuration.
    pub fn set_options(&self, options: ExecOptions) {
        *self.options.write() = options;
    }

    /// The strategy [`execute_plan`] uses for this engine.
    pub fn exec_mode(&self) -> ExecMode {
        self.options().mode
    }

    /// Whether bind-time projection pruning is applied to new plans.
    pub fn projection_pruning_enabled(&self) -> bool {
        self.options().projection_pruning
    }

    /// Whether dependent UDTF invocations are memoized per step.
    pub fn udtf_memo_enabled(&self) -> bool {
        self.options().udtf_memo
    }

    /// Whether the streaming executor runs vectorized (columnar batches).
    pub fn vectorized_enabled(&self) -> bool {
        self.options().vectorized
    }

    /// Which planner compiles statements for this engine.
    pub fn planner_mode(&self) -> PlannerMode {
        self.options().planner
    }

    /// ANALYZE: collect statistics (row count, per-column NDV, min/max,
    /// null fraction) for every local table and registered foreign table,
    /// then clear the plan cache so subsequent statements are planned
    /// against fresh numbers. Returns the number of tables analyzed.
    pub fn analyze(&self) -> FedResult<usize> {
        let n = self.catalog.analyze()?;
        self.clear_plan_cache();
        Ok(n)
    }

    /// ANALYZE one table by its catalog name.
    pub fn analyze_table(&self, name: &str) -> FedResult<()> {
        self.catalog.analyze_table(&Ident::new(name))?;
        self.clear_plan_cache();
        Ok(())
    }

    /// The charge sequence of a SQL integration UDTF under the enhanced
    /// UDTF architecture (Fig. 6, right table: start / finish I-UDTF).
    pub fn iudtf_charge_spec(&self) -> ChargeSpec {
        ChargeSpec {
            on_start: vec![ChargeItem::new(
                Component::Udtf,
                "Start I-UDTF",
                self.cost.iudtf_start,
            )],
            on_finish: vec![ChargeItem::new(
                Component::Udtf,
                "Finish I-UDTF",
                self.cost.iudtf_finish,
            )],
        }
    }

    /// Register a table function (A-UDTF, Java I-UDTF, or wrapper UDTF).
    pub fn register_udtf(&self, udtf: Udtf) -> FedResult<()> {
        self.catalog.register_udtf(udtf)
    }

    /// Number of cached plans (observability for tests and reports).
    pub fn cached_plan_count(&self) -> usize {
        self.plan_cache.read().len()
    }

    /// Drop all cached plans (used to model the cold-cache tier).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.write().clear();
    }

    /// Execute one statement without host variables.
    pub fn execute(&self, sql: &str, meter: &mut Meter) -> FedResult<Table> {
        self.execute_with_params(sql, &[], meter)
    }

    /// Execute one statement with named host variables (the application
    /// variables of embedded SQL).
    pub fn execute_with_params(
        &self,
        sql: &str,
        params: &[(&str, Value)],
        meter: &mut Meter,
    ) -> FedResult<Table> {
        if !meter.tracing() {
            return self.execute_with_params_inner(sql, params, meter);
        }
        meter.span_start(Component::Fdbs, "fdbs.execute");
        let result = self.execute_with_params_inner(sql, params, meter);
        if let Ok(table) = &result {
            meter.span_counter("rows_out", table.row_count() as u64);
        }
        meter.span_end();
        result
    }

    fn execute_with_params_inner(
        &self,
        sql: &str,
        params: &[(&str, Value)],
        meter: &mut Meter,
    ) -> FedResult<Table> {
        // Warm-statement fast path: a SELECT re-executed with the same text
        // and host-variable signature is served straight from the plan
        // cache, skipping lexing and parsing entirely. Only the SELECT path
        // stores keys based on the raw statement text, so a hit here can
        // only be a SELECT plan; DDL clears the whole cache, so a hit is
        // never stale. A NULL host variable falls through to the slow path
        // (its type cannot participate in the cache key).
        if let Ok((_, values, cache_key)) = self.host_params_and_key(sql, params) {
            let cached = self.plan_cache.read().get(&cache_key).cloned();
            if let Some(plan) = cached {
                return execute_plan(self, &plan, &values, meter);
            }
        }
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(select) => {
                let (plan, values) = self.plan_select(sql, &select, params, meter)?;
                execute_plan(self, &plan, &values, meter)
            }
            Statement::Explain(inner) => match *inner {
                Statement::Select(select) => {
                    let (plan, _values) =
                        self.plan_select(&select.to_string(), &select, params, meter)?;
                    let schema = Arc::new(Schema::of(&[("plan", DataType::Varchar)]));
                    let mut t = Table::new(schema);
                    for line in plan.explain().lines() {
                        t.push_unchecked(Row::new(vec![Value::str(line)]));
                    }
                    Ok(t)
                }
                other => Err(FedError::plan(format!(
                    "EXPLAIN supports SELECT statements only, got {other}"
                ))),
            },
            Statement::ExplainAnalyze(inner) => match *inner {
                Statement::Select(select) => self.explain_analyze(&select, params, meter),
                other => Err(FedError::plan(format!(
                    "EXPLAIN ANALYZE supports SELECT statements only, got {other}"
                ))),
            },
            other => self.execute_statement(&other, meter),
        }
    }

    /// `EXPLAIN ANALYZE SELECT ...`: execute the statement on a traced
    /// child meter and render the static plan followed by the recorded
    /// span tree — per-operator actual rows, batches, bytes and virtual
    /// time. The child's charges join back into the caller's meter, so
    /// the statement costs exactly what the underlying SELECT costs.
    fn explain_analyze(
        &self,
        select: &SelectStmt,
        params: &[(&str, Value)],
        meter: &mut Meter,
    ) -> FedResult<Table> {
        let (plan, values) = self.plan_select(&select.to_string(), select, params, meter)?;
        let mut child = meter.fork();
        child.set_tracing(true);
        child.set_wall_sampling(true);
        child.span_start(Component::Fdbs, "fdbs.execute");
        let result = execute_plan(self, &plan, &values, &mut child);
        if let Ok(table) = &result {
            child.span_counter("rows_out", table.row_count() as u64);
        }
        child.span_end();
        let trace = child.finish_trace();
        let elapsed = child.elapsed_us();
        let rows_mat = child.rows_materialized();
        let bytes_mat = child.bytes_materialized();
        meter.join(vec![child]);
        result?;

        let schema = Arc::new(Schema::of(&[("plan", DataType::Varchar)]));
        let mut t = Table::new(schema);
        for line in plan.explain().lines() {
            t.push_unchecked(Row::new(vec![Value::str(line)]));
        }
        t.push_unchecked(Row::new(vec![Value::str(format!(
            "Actuals: elapsed={elapsed}us materialized={rows_mat} rows / {bytes_mat} bytes"
        ))]));
        if let Some(root) = trace {
            for line in root.render().lines() {
                t.push_unchecked(Row::new(vec![Value::str(format!("  {line}"))]));
            }
            // Estimation quality: every operator that carries both an
            // `est` and a `rows` counter gets a q-error line
            // (max(est/act, act/est), both clamped to >= 1), plus the
            // median across operators.
            let mut qs: Vec<f64> = Vec::new();
            root.walk(&mut |node, _| {
                if let (Some(est), Some(act)) = (node.counter("est"), node.counter("rows")) {
                    let e = (est as f64).max(1.0);
                    let a = (act as f64).max(1.0);
                    let q = (e / a).max(a / e);
                    qs.push(q);
                    t.push_unchecked(Row::new(vec![Value::str(format!(
                        "  q-error {}: est={est} act={act} q={q:.2}",
                        node.name
                    ))]));
                }
            });
            if !qs.is_empty() {
                qs.sort_by(f64::total_cmp);
                let mid = qs.len() / 2;
                let median = if qs.len() % 2 == 1 {
                    qs[mid]
                } else {
                    (qs[mid - 1] + qs[mid]) / 2.0
                };
                t.push_unchecked(Row::new(vec![Value::str(format!(
                    "  q-error median: {median:.2}"
                ))]));
            }
        }
        Ok(t)
    }

    /// Execute a semicolon-separated script (setup convenience); returns
    /// the result of the final statement.
    pub fn execute_script(&self, sql: &str, meter: &mut Meter) -> FedResult<Table> {
        let stmts = parse_statements(sql)?;
        let mut last = Table::new(Arc::new(Schema::empty()));
        for stmt in &stmts {
            last = match stmt {
                Statement::Select(select) => {
                    let key = format!("script:{select}");
                    let (plan, values) = self.plan_select(&key, select, &[], meter)?;
                    execute_plan(self, &plan, &values, meter)?
                }
                explain @ (Statement::Explain(_) | Statement::ExplainAnalyze(_)) => {
                    self.execute_with_params(&explain.to_string(), &[], meter)?
                }
                other => self.execute_statement(other, meter)?,
            };
        }
        Ok(last)
    }

    /// Call a registered table function directly — the entry point an
    /// application uses for a federated function outside a wider query.
    pub fn call_function(&self, name: &str, args: &[Value], meter: &mut Meter) -> FedResult<Table> {
        let udtf = self.catalog.udtf(&Ident::new(name))?;
        invoke_udtf(self, &udtf, args, meter)
    }

    /// Bind the host variables and derive the plan-cache key for a SELECT:
    /// the raw statement text, the host-variable signature, and the
    /// [`ExecOptions::cache_tag`] (a plan bound under one configuration
    /// must never be served to an engine configured another way).
    fn host_params_and_key(
        &self,
        cache_key_base: &str,
        params: &[(&str, Value)],
    ) -> FedResult<BoundHostParams> {
        let mut param_defs: Vec<(Ident, DataType)> = Vec::with_capacity(params.len());
        let mut values: Vec<Value> = Vec::with_capacity(params.len());
        for (name, value) in params {
            let dt = value.data_type().ok_or_else(|| {
                FedError::bind(format!(
                    "host variable {name} is NULL; its type cannot be inferred"
                ))
            })?;
            param_defs.push((Ident::new(*name), dt));
            values.push(value.clone());
        }
        let cache_key = format!(
            "{cache_key_base}|{}|{}",
            param_defs
                .iter()
                .map(|(n, t)| format!("{n}:{t}"))
                .collect::<Vec<_>>()
                .join(","),
            self.options().cache_tag()
        );
        Ok((param_defs, values, cache_key))
    }

    /// Plan (with cache) a SELECT. Returns the plan and parameter values in
    /// slot order.
    fn plan_select(
        &self,
        cache_key_base: &str,
        select: &SelectStmt,
        params: &[(&str, Value)],
        meter: &mut Meter,
    ) -> FedResult<(Arc<Plan>, Vec<Value>)> {
        let (param_defs, values, cache_key) = self.host_params_and_key(cache_key_base, params)?;
        if let Some(plan) = self.plan_cache.read().get(&cache_key) {
            return Ok((plan.clone(), values));
        }
        meter.charge(Component::Fdbs, "Compile statement", self.cost.plan_compile);
        let opts = self.options();
        let logical = PlanBuilder::new(&self.catalog)
            .with_host_params(param_defs)
            .bind_logical(select)?;
        let plan = optimize(&self.catalog, logical, opts.planner)?;
        let plan = Arc::new(if opts.projection_pruning {
            plan.prune_projections()
        } else {
            plan
        });
        self.plan_cache.write().insert(cache_key, plan.clone());
        Ok((plan, values))
    }

    /// Execute the SQL body of an I-UDTF with bound argument values.
    pub(crate) fn execute_function_body(
        &self,
        udtf: &Udtf,
        body: &SelectStmt,
        args: &[Value],
        meter: &mut Meter,
    ) -> FedResult<Table> {
        if !meter.tracing() {
            return self.execute_function_body_inner(udtf, body, args, meter);
        }
        let span = self.fn_spans.get(&udtf.name, Ident::clone, || {
            format!("fdbs.fn {}", udtf.name)
        });
        meter.span_start(Component::Fdbs, span);
        let result = self.execute_function_body_inner(udtf, body, args, meter);
        meter.span_end();
        result
    }

    fn execute_function_body_inner(
        &self,
        udtf: &Udtf,
        body: &SelectStmt,
        args: &[Value],
        meter: &mut Meter,
    ) -> FedResult<Table> {
        let opts = self.options();
        let cache_key = format!("fn:{}|{}", udtf.name.normalized(), opts.cache_tag());
        let plan = {
            let cached = self.plan_cache.read().get(&cache_key).cloned();
            match cached {
                Some(p) => p,
                None => {
                    meter.charge(Component::Fdbs, "Compile statement", self.cost.plan_compile);
                    let logical = PlanBuilder::new(&self.catalog)
                        .with_function_context(udtf.name.clone(), udtf.params.clone())
                        .bind_logical(body)?;
                    let plan = optimize(&self.catalog, logical, opts.planner)?;
                    let plan = Arc::new(if opts.projection_pruning {
                        plan.prune_projections()
                    } else {
                        plan
                    });
                    self.plan_cache.write().insert(cache_key, plan.clone());
                    plan
                }
            }
        };
        execute_plan(self, &plan, args, meter)
    }

    /// DDL / DML dispatch.
    fn execute_statement(&self, stmt: &Statement, meter: &mut Meter) -> FedResult<Table> {
        // Any catalog change invalidates cached plans (they may hold
        // references to dropped functions or stale schemas).
        if matches!(
            stmt,
            Statement::CreateTable { .. }
                | Statement::CreateIndex { .. }
                | Statement::CreateFunction(_)
                | Statement::DropTable { .. }
                | Statement::DropFunction { .. }
        ) {
            self.plan_cache.write().clear();
        }
        match stmt {
            Statement::Select(_) | Statement::Explain(_) | Statement::ExplainAnalyze(_) => Err(
                FedError::plan("SELECT/EXPLAIN must go through the query path"),
            ),
            Statement::CreateTable { name, columns } => {
                let schema = Arc::new(Schema::new(
                    columns
                        .iter()
                        .map(|c| {
                            let col = fedwf_types::Column::new(c.name.clone(), c.data_type);
                            if c.not_null {
                                col.not_null()
                            } else {
                                col
                            }
                        })
                        .collect(),
                ));
                self.catalog.local().create_table(name.clone(), schema)?;
                Ok(done())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            } => {
                let kind = if *unique {
                    fedwf_relstore::IndexKind::Unique
                } else {
                    fedwf_relstore::IndexKind::NonUnique
                };
                self.catalog.local().create_index(
                    table.as_str(),
                    name.as_str(),
                    column.as_str(),
                    kind,
                )?;
                Ok(done())
            }
            Statement::CreateFunction(cf) => {
                let params: Vec<(Ident, DataType)> = cf
                    .params
                    .iter()
                    .map(|p| (p.name.clone(), p.data_type))
                    .collect();
                let returns = Arc::new(Schema::new(
                    cf.returns
                        .iter()
                        .map(|c| {
                            let col = fedwf_types::Column::new(c.name.clone(), c.data_type);
                            if c.not_null {
                                col.not_null()
                            } else {
                                col
                            }
                        })
                        .collect(),
                ));
                // Validate the body eagerly, as DB2 does at CREATE time.
                PlanBuilder::new(&self.catalog)
                    .with_function_context(cf.name.clone(), params.clone())
                    .bind(&cf.body)
                    .map_err(|e| {
                        e.with_context(format!("validating body of function {}", cf.name))
                    })?;
                let udtf = Udtf {
                    name: cf.name.clone(),
                    params,
                    returns,
                    kind: UdtfKind::Sql(Box::new(cf.body.clone())),
                    charges: self.iudtf_charge_spec(),
                    fanout: 1.0,
                };
                self.catalog.register_udtf(udtf)?;
                Ok(done())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let schema = self.catalog.local().table_schema(table.as_str())?;
                let builder = PlanBuilder::new(&self.catalog);
                let mut to_insert = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let row = build_insert_row(&builder, &schema, columns.as_deref(), exprs)?;
                    to_insert.push(row);
                }
                let n = self.catalog.local().insert_all(table.as_str(), to_insert)?;
                meter.charge(
                    Component::Fdbs,
                    "Produce result rows",
                    self.cost.row_output * n as u64,
                );
                Ok(affected(n))
            }
            Statement::Update {
                table,
                assignments,
                selection,
            } => {
                let predicate = self.storage_predicate(table, selection)?;
                let builder = PlanBuilder::new(&self.catalog);
                let schema = self.catalog.local().table_schema(table.as_str())?;
                let mut total = 0;
                for (column, expr) in assignments {
                    let value = eval_constant(&builder, expr)?;
                    let col_idx = schema.index_of(column).ok_or_else(|| {
                        FedError::bind(format!("unknown column {column} in UPDATE"))
                    })?;
                    let value = coerce(value, schema.columns()[col_idx].data_type)?;
                    total = self.catalog.local().update_where(
                        table.as_str(),
                        &predicate,
                        column.as_str(),
                        value,
                    )?;
                }
                Ok(affected(total))
            }
            Statement::Delete { table, selection } => {
                let predicate = self.storage_predicate(table, selection)?;
                let n = self
                    .catalog
                    .local()
                    .delete_where(table.as_str(), &predicate)?;
                Ok(affected(n))
            }
            Statement::DropTable { name } => {
                self.catalog.local().drop_table(name.as_str())?;
                self.catalog.invalidate_statistics(name);
                Ok(done())
            }
            Statement::DropFunction { name } => {
                self.catalog.drop_udtf(name)?;
                // Invalidate the cached body plans (one per pruning flag).
                let prefix = format!("fn:{}|", name.normalized());
                self.plan_cache
                    .write()
                    .retain(|k, _| !k.starts_with(&prefix));
                Ok(done())
            }
        }
    }

    /// Convert an UPDATE/DELETE selection into a storage predicate by
    /// planning a synthetic single-table SELECT and reusing the pushdown
    /// machinery. Predicates beyond the storage layer's shape are rejected.
    fn storage_predicate(
        &self,
        table: &Ident,
        selection: &Option<Expr>,
    ) -> FedResult<fedwf_relstore::Predicate> {
        let Some(selection) = selection else {
            return Ok(fedwf_relstore::Predicate::True);
        };
        let synthetic = SelectStmt {
            distinct: false,
            projection: vec![fedwf_sql::SelectItem::Wildcard],
            from: vec![fedwf_sql::FromItem::Table {
                name: table.clone(),
                alias: None,
            }],
            selection: Some(selection.clone()),
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        let plan = PlanBuilder::new(&self.catalog).bind(&synthetic)?;
        if plan.step_filters[0].is_some() {
            return Err(FedError::unsupported(format!(
                "UPDATE/DELETE predicate on {table} is too complex for the storage layer"
            )));
        }
        match &plan.steps[0] {
            FromStep::ScanLocal { pushdown, .. } => Ok(pushdown.clone()),
            _ => Err(FedError::unsupported(
                "UPDATE/DELETE target must be a local table",
            )),
        }
    }
}

impl std::fmt::Debug for Fdbs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fdbs")
            .field("catalog", &self.catalog)
            .field("cached_plans", &self.cached_plan_count())
            .finish()
    }
}

fn done() -> Table {
    Table::new(Arc::new(Schema::empty()))
}

fn affected(n: usize) -> Table {
    Table::scalar("rows", Value::Int(n as i32))
}

fn eval_constant(builder: &PlanBuilder<'_>, expr: &Expr) -> FedResult<Value> {
    let bound = builder.bind_value_expr(expr)?;
    bound.eval(&[], &[])
}

fn coerce(value: Value, to: DataType) -> FedResult<Value> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    Ok(implicit_cast(&value, to)?)
}

fn build_insert_row(
    builder: &PlanBuilder<'_>,
    schema: &fedwf_types::SchemaRef,
    columns: Option<&[Ident]>,
    exprs: &[Expr],
) -> FedResult<Row> {
    let values: Vec<Value> = exprs
        .iter()
        .map(|e| eval_constant(builder, e))
        .collect::<FedResult<_>>()?;
    match columns {
        None => {
            if values.len() != schema.len() {
                return Err(FedError::bind(format!(
                    "INSERT supplies {} values for {} columns",
                    values.len(),
                    schema.len()
                )));
            }
            let coerced: Vec<Value> = values
                .into_iter()
                .zip(schema.columns())
                .map(|(v, c)| coerce(v, c.data_type))
                .collect::<FedResult<_>>()?;
            Ok(Row::new(coerced))
        }
        Some(cols) => {
            if values.len() != cols.len() {
                return Err(FedError::bind("INSERT column list and VALUES arity differ"));
            }
            let mut row = vec![Value::Null; schema.len()];
            for (col, v) in cols.iter().zip(values) {
                let idx = schema
                    .index_of(col)
                    .ok_or_else(|| FedError::bind(format!("unknown column {col} in INSERT")))?;
                row[idx] = coerce(v, schema.columns()[idx].data_type)?;
            }
            Ok(Row::new(row))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwf_sim::Meter;

    fn fdbs() -> Fdbs {
        let f = Fdbs::new(CostModel::zero());
        let mut m = Meter::new();
        f.execute(
            "CREATE TABLE Suppliers (SupplierNo INT NOT NULL, Name VARCHAR, Relia INT)",
            &mut m,
        )
        .unwrap();
        f.execute("CREATE UNIQUE INDEX pk ON Suppliers (SupplierNo)", &mut m)
            .unwrap();
        f.execute(
            "INSERT INTO Suppliers VALUES (1, 'Acme', 80), (2, 'Bolt', 95), (1234, 'Precision', 87)",
            &mut m,
        )
        .unwrap();
        f.register_udtf(Udtf::native(
            "GetQuality",
            vec![(Ident::new("SupplierNo"), DataType::Int)],
            Arc::new(Schema::of(&[("Qual", DataType::Int)])),
            |args, _m| {
                let n = args[0].as_i64().unwrap_or(0);
                Ok(Table::scalar(
                    "Qual",
                    Value::Int(if n == 1234 { 93 } else { 40 }),
                ))
            },
        ))
        .unwrap();
        f.register_udtf(Udtf::native(
            "GetReliability",
            vec![(Ident::new("SupplierNo"), DataType::Int)],
            Arc::new(Schema::of(&[("Relia", DataType::Int)])),
            |args, _m| {
                let n = args[0].as_i64().unwrap_or(0);
                Ok(Table::scalar(
                    "Relia",
                    Value::Int(if n == 1234 { 87 } else { 30 }),
                ))
            },
        ))
        .unwrap();
        f
    }

    #[test]
    fn basic_select_with_pushdown() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .execute("SELECT Name FROM Suppliers WHERE SupplierNo = 2", &mut m)
            .unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.value(0, "Name"), Some(&Value::str("Bolt")));
    }

    #[test]
    fn lateral_udtf_over_table() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .execute(
                "SELECT S.Name, GQ.Qual FROM Suppliers AS S, TABLE (GetQuality(S.SupplierNo)) AS GQ WHERE S.SupplierNo = 1234",
                &mut m,
            )
            .unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.value(0, "Qual"), Some(&Value::Int(93)));
    }

    #[test]
    fn host_variables() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .execute_with_params(
                "SELECT GQ.Qual FROM TABLE (GetQuality(SupplierNo)) AS GQ",
                &[("SupplierNo", Value::Int(1234))],
                &mut m,
            )
            .unwrap();
        assert_eq!(t.value(0, "Qual"), Some(&Value::Int(93)));
    }

    #[test]
    fn create_function_and_invoke() {
        let f = fdbs();
        let mut m = Meter::new();
        f.execute(
            "CREATE FUNCTION GetSuppScores (SupplierNo INT) RETURNS TABLE (Q INT, R INT) \
             LANGUAGE SQL RETURN \
             SELECT GQ.Qual, GR.Relia \
             FROM TABLE (GetQuality(GetSuppScores.SupplierNo)) AS GQ, \
                  TABLE (GetReliability(GetSuppScores.SupplierNo)) AS GR",
            &mut m,
        )
        .unwrap();
        let t = f
            .execute(
                "SELECT GS.Q, GS.R FROM TABLE (GetSuppScores(1234)) AS GS",
                &mut m,
            )
            .unwrap();
        assert_eq!(t.value(0, "Q"), Some(&Value::Int(93)));
        assert_eq!(t.value(0, "R"), Some(&Value::Int(87)));
    }

    #[test]
    fn create_function_validates_body_eagerly() {
        let f = fdbs();
        let mut m = Meter::new();
        let err = f
            .execute(
                "CREATE FUNCTION Broken (X INT) RETURNS TABLE (Y INT) LANGUAGE SQL RETURN \
                 SELECT GQ.Qual FROM TABLE (NoSuchFunction(Broken.X)) AS GQ",
                &mut m,
            )
            .unwrap_err();
        assert!(err.to_string().contains("NoSuchFunction") || err.to_string().contains("unknown"));
    }

    #[test]
    fn plan_cache_hits_skip_compilation() {
        let f = Fdbs::new(CostModel::default());
        let mut m = Meter::new();
        f.execute("CREATE TABLE T (a INT)", &mut m).unwrap();
        f.execute("INSERT INTO T VALUES (1)", &mut m).unwrap();
        let mut m1 = Meter::new();
        f.execute("SELECT a FROM T", &mut m1).unwrap();
        let first = m1.now_us();
        let mut m2 = Meter::new();
        f.execute("SELECT a FROM T", &mut m2).unwrap();
        let second = m2.now_us();
        assert!(
            first >= second + f.cost().plan_compile,
            "repeated call ({second}) must be at least plan_compile cheaper than first ({first})"
        );
        assert_eq!(f.cached_plan_count(), 1);
    }

    #[test]
    fn warm_statement_fast_path_is_safe() {
        let f = fdbs();
        let mut m = Meter::new();
        // Warm the cache, then re-execute: the raw-SQL fast path must
        // return the same result.
        let sql = "SELECT Name FROM Suppliers WHERE SupplierNo = TargetNo";
        let params = [("TargetNo", Value::Int(2))];
        let cold = f.execute_with_params(sql, &params, &mut m).unwrap();
        let warm = f.execute_with_params(sql, &params, &mut m).unwrap();
        assert_eq!(cold.rows(), warm.rows());
        // Different parameter *values* with the same signature still hit.
        let other = f
            .execute_with_params(sql, &[("TargetNo", Value::Int(1234))], &mut m)
            .unwrap();
        assert_eq!(other.value(0, "Name"), Some(&Value::str("Precision")));
        // A NULL host variable cannot use the fast path; the slow path
        // reports the bind error.
        let err = f
            .execute_with_params(sql, &[("TargetNo", Value::Null)], &mut m)
            .unwrap_err();
        assert!(err.to_string().contains("NULL"), "{err}");
        // DDL clears the cache, so the warm statement never goes stale.
        f.execute("DROP TABLE Suppliers", &mut m).unwrap();
        assert!(f.execute_with_params(sql, &params, &mut m).is_err());
    }

    #[test]
    fn pruning_toggle_keys_the_plan_cache() {
        let f = fdbs();
        let mut m = Meter::new();
        f.execute("SELECT Name FROM Suppliers", &mut m).unwrap();
        assert_eq!(f.cached_plan_count(), 1);
        f.set_options(f.options().projection_pruning(false));
        f.execute("SELECT Name FROM Suppliers", &mut m).unwrap();
        assert_eq!(f.cached_plan_count(), 2, "distinct key per options tag");
    }

    #[test]
    fn dml_update_delete() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .execute(
                "UPDATE Suppliers SET Relia = 99 WHERE SupplierNo = 2",
                &mut m,
            )
            .unwrap();
        assert_eq!(t.value(0, "rows"), Some(&Value::Int(1)));
        let t = f
            .execute("SELECT Relia FROM Suppliers WHERE SupplierNo = 2", &mut m)
            .unwrap();
        assert_eq!(t.value(0, "Relia"), Some(&Value::Int(99)));
        let t = f
            .execute("DELETE FROM Suppliers WHERE SupplierNo = 1", &mut m)
            .unwrap();
        assert_eq!(t.value(0, "rows"), Some(&Value::Int(1)));
        let t = f.execute("SELECT * FROM Suppliers", &mut m).unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let f = fdbs();
        let mut m = Meter::new();
        f.execute("INSERT INTO Suppliers (SupplierNo) VALUES (77)", &mut m)
            .unwrap();
        let t = f
            .execute("SELECT Name FROM Suppliers WHERE SupplierNo = 77", &mut m)
            .unwrap();
        assert_eq!(t.value(0, "Name"), Some(&Value::Null));
    }

    #[test]
    fn order_by_distinct_limit() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .execute(
                "SELECT Relia FROM Suppliers ORDER BY Relia DESC LIMIT 2",
                &mut m,
            )
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, "Relia"), Some(&Value::Int(95)));
        let t = f
            .execute("SELECT DISTINCT 1 FROM Suppliers", &mut m)
            .unwrap();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn drop_function_invalidates() {
        let f = fdbs();
        let mut m = Meter::new();
        f.execute(
            "CREATE FUNCTION F1 (X INT) RETURNS TABLE (Q INT) LANGUAGE SQL RETURN \
             SELECT GQ.Qual FROM TABLE (GetQuality(F1.X)) AS GQ",
            &mut m,
        )
        .unwrap();
        f.execute("SELECT T.Q FROM TABLE (F1(1)) AS T", &mut m)
            .unwrap();
        f.execute("DROP FUNCTION F1", &mut m).unwrap();
        assert!(f
            .execute("SELECT T.Q FROM TABLE (F1(1)) AS T", &mut m)
            .is_err());
    }

    #[test]
    fn call_function_directly() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .call_function("GetQuality", &[Value::Int(1234)], &mut m)
            .unwrap();
        assert_eq!(t.value(0, "Qual"), Some(&Value::Int(93)));
    }

    #[test]
    fn explain_renders_the_plan() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .execute(
                "EXPLAIN SELECT S.Name, GQ.Qual FROM Suppliers AS S, TABLE (GetQuality(S.SupplierNo)) AS GQ WHERE S.SupplierNo = 1234 ORDER BY GQ.Qual LIMIT 5",
                &mut m,
            )
            .unwrap();
        let text: Vec<String> = t.rows().iter().map(|r| r.values()[0].render()).collect();
        let joined = text.join("\n");
        assert!(joined.contains("Limit 5"), "{joined}");
        assert!(joined.contains("Sort"), "{joined}");
        assert!(joined.contains("Project [Name, Qual]"), "{joined}");
        assert!(
            joined.contains("ScanLocal Suppliers AS S [pushdown:"),
            "{joined}"
        );
        assert!(joined.contains("TableFunction GetQuality"), "{joined}");
        assert!(joined.contains("[lateral]"), "{joined}");
        // EXPLAIN of DML is rejected.
        assert!(f.execute("EXPLAIN DELETE FROM Suppliers", &mut m).is_err());
    }

    #[test]
    fn explain_analyze_executes_and_reports_actuals() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .execute(
                "EXPLAIN ANALYZE SELECT S.Name, GQ.Qual FROM Suppliers AS S, TABLE (GetQuality(S.SupplierNo)) AS GQ",
                &mut m,
            )
            .unwrap();
        let joined: String = t
            .rows()
            .iter()
            .map(|r| r.values()[0].render())
            .collect::<Vec<_>>()
            .join("\n");
        // Static plan shape, then the recorded actuals.
        assert!(joined.contains("ScanLocal Suppliers"), "{joined}");
        assert!(joined.contains("Actuals: elapsed="), "{joined}");
        assert!(joined.contains("scan Suppliers"), "{joined}");
        assert!(joined.contains("dependent-udtf GetQuality"), "{joined}");
        assert!(joined.contains("udtf GetQuality"), "{joined}");
        assert!(joined.contains("rows=3"), "{joined}");
        // The statement really executed: the UDTF results were buffered.
        assert!(m.rows_materialized() > 0);
        // The caller's meter is not left tracing.
        assert!(!m.tracing());
        assert!(m.finish_trace().is_none());
        // EXPLAIN ANALYZE of DML is rejected.
        assert!(f
            .execute("EXPLAIN ANALYZE DELETE FROM Suppliers", &mut m)
            .is_err());
    }

    #[test]
    fn explain_marks_independent_functions() {
        let f = fdbs();
        let mut m = Meter::new();
        let t = f
            .execute(
                "EXPLAIN SELECT GQ.Qual, GR.Relia FROM TABLE (GetQuality(1)) AS GQ, TABLE (GetReliability(2)) AS GR",
                &mut m,
            )
            .unwrap();
        let joined: String = t
            .rows()
            .iter()
            .map(|r| r.values()[0].render())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            joined.contains("[independent: join with selection]"),
            "{joined}"
        );
    }

    #[test]
    fn script_execution() {
        let f = Fdbs::new(CostModel::zero());
        let mut m = Meter::new();
        let t = f
            .execute_script(
                "CREATE TABLE X (a INT); INSERT INTO X VALUES (1), (2); SELECT a FROM X ORDER BY a DESC;",
                &mut m,
            )
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, "a"), Some(&Value::Int(2)));
    }
}
