//! Bound scalar expressions and their evaluator.
//!
//! A [`BoundExpr`] is an [`fedwf_sql::Expr`] after name resolution: column
//! references have become positional indexes into the executor's current
//! row layout, parameter references (`BuySuppComp.SupplierNo`, or bare host
//! variables) have become parameter slots, cast *functions* (`BIGINT(x)`)
//! have been recognized, and scalar builtins are resolved.

use fedwf_types::{cast_value, DataType, FedError, FedResult, Value};

/// Scalar builtins beyond casts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFn {
    Upper,
    Lower,
    Length,
    Abs,
}

impl ScalarFn {
    pub fn resolve(name: &str) -> Option<ScalarFn> {
        match name.to_ascii_uppercase().as_str() {
            "UPPER" => Some(ScalarFn::Upper),
            "LOWER" => Some(ScalarFn::Lower),
            "LENGTH" => Some(ScalarFn::Length),
            "ABS" => Some(ScalarFn::Abs),
            _ => None,
        }
    }
}

/// Binary operators after binding (same set as the AST's).
pub use fedwf_sql::BinaryOp;

/// A fully resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Column `index` of the executor's current row.
    Column {
        index: usize,
        data_type: DataType,
    },
    /// Parameter slot (function parameter or host variable).
    Param {
        index: usize,
        data_type: DataType,
    },
    Literal(Value),
    Binary {
        left: Box<BoundExpr>,
        op: BinaryOp,
        right: Box<BoundExpr>,
    },
    Not(Box<BoundExpr>),
    Neg(Box<BoundExpr>),
    Cast {
        input: Box<BoundExpr>,
        to: DataType,
    },
    Scalar {
        f: ScalarFn,
        args: Vec<BoundExpr>,
    },
    IsNull {
        input: Box<BoundExpr>,
        negated: bool,
    },
}

impl BoundExpr {
    /// Static result type where determinable (comparisons are BOOLEAN,
    /// casts are their target, arithmetic follows the numeric lattice).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            BoundExpr::Column { data_type, .. } | BoundExpr::Param { data_type, .. } => {
                Some(*data_type)
            }
            BoundExpr::Literal(v) => v.data_type(),
            BoundExpr::Cast { to, .. } => Some(*to),
            BoundExpr::Not(_) | BoundExpr::IsNull { .. } => Some(DataType::Boolean),
            BoundExpr::Neg(e) => e.data_type(),
            BoundExpr::Scalar { f, .. } => Some(match f {
                ScalarFn::Upper | ScalarFn::Lower => DataType::Varchar,
                ScalarFn::Length => DataType::Int,
                ScalarFn::Abs => DataType::Double,
            }),
            BoundExpr::Binary { left, op, right } => match op {
                BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => Some(DataType::Boolean),
                BinaryOp::Concat => Some(DataType::Varchar),
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                    let (a, b) = (left.data_type()?, right.data_type()?);
                    let rank = a.numeric_rank()?.max(b.numeric_rank()?);
                    Some(match rank {
                        0 => DataType::Int,
                        1 => DataType::BigInt,
                        _ => DataType::Double,
                    })
                }
            },
        }
    }

    /// All column indexes referenced by the expression.
    pub fn column_indexes(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let BoundExpr::Column { index, .. } = e {
                out.push(*index);
            }
        });
        out
    }

    /// Rebuild the expression with every column index rewritten through
    /// `f` — how the projection-pruning pass relocates references from the
    /// full concatenated row layout into the pruned one.
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> BoundExpr {
        match self {
            BoundExpr::Column { index, data_type } => BoundExpr::Column {
                index: f(*index),
                data_type: *data_type,
            },
            BoundExpr::Param { .. } | BoundExpr::Literal(_) => self.clone(),
            BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
                left: Box::new(left.map_columns(f)),
                op: *op,
                right: Box::new(right.map_columns(f)),
            },
            BoundExpr::Not(e) => BoundExpr::Not(Box::new(e.map_columns(f))),
            BoundExpr::Neg(e) => BoundExpr::Neg(Box::new(e.map_columns(f))),
            BoundExpr::Cast { input, to } => BoundExpr::Cast {
                input: Box::new(input.map_columns(f)),
                to: *to,
            },
            BoundExpr::Scalar { f: sf, args } => BoundExpr::Scalar {
                f: *sf,
                args: args.iter().map(|a| a.map_columns(f)).collect(),
            },
            BoundExpr::IsNull { input, negated } => BoundExpr::IsNull {
                input: Box::new(input.map_columns(f)),
                negated: *negated,
            },
        }
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a BoundExpr)) {
        f(self);
        match self {
            BoundExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            BoundExpr::Not(e) | BoundExpr::Neg(e) => e.walk(f),
            BoundExpr::Cast { input, .. } | BoundExpr::IsNull { input, .. } => input.walk(f),
            BoundExpr::Scalar { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Evaluate against a row and the parameter vector.
    pub fn eval(&self, row: &[Value], params: &[Value]) -> FedResult<Value> {
        match self {
            BoundExpr::Column { index, .. } => row.get(*index).cloned().ok_or_else(|| {
                FedError::execution(format!("column index {index} out of row bounds"))
            }),
            BoundExpr::Param { index, .. } => params.get(*index).cloned().ok_or_else(|| {
                FedError::execution(format!("parameter index {index} out of bounds"))
            }),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Cast { input, to } => {
                let v = input.eval(row, params)?;
                Ok(cast_value(&v, *to)?)
            }
            BoundExpr::Not(e) => apply_not(&e.eval(row, params)?),
            BoundExpr::Neg(e) => apply_neg(&e.eval(row, params)?),
            BoundExpr::IsNull { input, negated } => {
                let v = input.eval(row, params)?;
                Ok(Value::Boolean(v.is_null() != *negated))
            }
            BoundExpr::Scalar { f, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(row, params))
                    .collect::<FedResult<_>>()?;
                eval_scalar(*f, &vals)
            }
            BoundExpr::Binary { left, op, right } => eval_binary(*op, left, right, row, params),
        }
    }

    /// Evaluate as a predicate: true only when definitely TRUE (3VL).
    pub fn eval_predicate(&self, row: &[Value], params: &[Value]) -> FedResult<bool> {
        Ok(matches!(self.eval(row, params)?, Value::Boolean(true)))
    }
}

/// `NOT v` on an evaluated operand — shared by the row evaluator and the
/// vectorized kernels.
pub(crate) fn apply_not(v: &Value) -> FedResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Boolean(b) => Ok(Value::Boolean(!b)),
        other => Err(FedError::execution(format!(
            "NOT applied to non-boolean {other}"
        ))),
    }
}

/// Unary minus on an evaluated operand.
pub(crate) fn apply_neg(v: &Value) -> FedResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(v) => Ok(Value::Int(-v)),
        Value::BigInt(v) => Ok(Value::BigInt(-v)),
        Value::Double(v) => Ok(Value::Double(-v)),
        other => Err(FedError::execution(format!(
            "unary minus applied to {other}"
        ))),
    }
}

pub(crate) fn eval_scalar(f: ScalarFn, args: &[Value]) -> FedResult<Value> {
    let arg = |i: usize| -> FedResult<&Value> {
        args.get(i)
            .ok_or_else(|| FedError::execution("missing scalar function argument"))
    };
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match f {
        ScalarFn::Upper => Ok(Value::Varchar(
            arg(0)?
                .as_str()
                .ok_or_else(|| FedError::execution("UPPER expects VARCHAR"))?
                .to_uppercase()
                .into(),
        )),
        ScalarFn::Lower => Ok(Value::Varchar(
            arg(0)?
                .as_str()
                .ok_or_else(|| FedError::execution("LOWER expects VARCHAR"))?
                .to_lowercase()
                .into(),
        )),
        ScalarFn::Length => Ok(Value::Int(
            arg(0)?
                .as_str()
                .ok_or_else(|| FedError::execution("LENGTH expects VARCHAR"))?
                .chars()
                .count() as i32,
        )),
        ScalarFn::Abs => {
            let v = arg(0)?;
            match v {
                Value::Int(x) => Ok(Value::Int(x.abs())),
                Value::BigInt(x) => Ok(Value::BigInt(x.abs())),
                Value::Double(x) => Ok(Value::Double(x.abs())),
                other => Err(FedError::execution(format!(
                    "ABS expects a number, got {other}"
                ))),
            }
        }
    }
}

fn eval_binary(
    op: BinaryOp,
    left: &BoundExpr,
    right: &BoundExpr,
    row: &[Value],
    params: &[Value],
) -> FedResult<Value> {
    use BinaryOp::*;
    // Short-circuiting 3VL AND / OR.
    if matches!(op, And | Or) {
        let l = left.eval(row, params)?;
        let lb = match &l {
            Value::Null => None,
            Value::Boolean(b) => Some(*b),
            other => {
                return Err(FedError::execution(format!(
                    "{op:?} applied to non-boolean {other}"
                )))
            }
        };
        match (op, lb) {
            (And, Some(false)) => return Ok(Value::Boolean(false)),
            (Or, Some(true)) => return Ok(Value::Boolean(true)),
            _ => {}
        }
        let r = right.eval(row, params)?;
        let rb = match &r {
            Value::Null => None,
            Value::Boolean(b) => Some(*b),
            other => {
                return Err(FedError::execution(format!(
                    "{op:?} applied to non-boolean {other}"
                )))
            }
        };
        return Ok(match (op, lb, rb) {
            (And, Some(true), Some(true)) => Value::Boolean(true),
            (And, _, Some(false)) => Value::Boolean(false),
            (Or, Some(false), Some(false)) => Value::Boolean(false),
            (Or, _, Some(true)) => Value::Boolean(true),
            _ => Value::Null,
        });
    }

    let l = left.eval(row, params)?;
    let r = right.eval(row, params)?;
    apply_binary_nonlogical(op, &l, &r)
}

/// A non-AND/OR binary operator applied to two evaluated operands —
/// shared by the row evaluator and the vectorized kernels.
pub(crate) fn apply_binary_nonlogical(op: BinaryOp, l: &Value, r: &Value) -> FedResult<Value> {
    use BinaryOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let ord = l
                .sql_cmp(r)
                .ok_or_else(|| FedError::execution(format!("cannot compare {l} with {r}")))?;
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Boolean(b))
        }
        Concat => {
            let (Some(a), Some(b)) = (l.as_str(), r.as_str()) else {
                return Err(FedError::execution("|| expects VARCHAR operands"));
            };
            Ok(Value::Varchar(format!("{a}{b}").into()))
        }
        Add | Sub | Mul | Div => eval_arith(op, l, r),
        And | Or => unreachable!("logical ops are handled by the caller"),
    }
}

/// AND/OR on two *already evaluated* operands (eager Kleene). The row
/// evaluator stays lazy-right; the vectorized kernels evaluate both sides
/// and combine here. Anywhere the results could diverge — a right operand
/// whose evaluation errors, or a non-boolean right operand the lazy path
/// would never inspect — the eager path reports an error and the caller
/// falls back to row-at-a-time evaluation, so observable semantics are
/// identical.
pub(crate) fn apply_logical(op: BinaryOp, l: &Value, r: &Value) -> FedResult<Value> {
    let as_bool = |v: &Value| -> FedResult<Option<bool>> {
        match v {
            Value::Null => Ok(None),
            Value::Boolean(b) => Ok(Some(*b)),
            other => Err(FedError::execution(format!(
                "{op:?} applied to non-boolean {other}"
            ))),
        }
    };
    let lb = as_bool(l)?;
    match (op, lb) {
        (BinaryOp::And, Some(false)) => return Ok(Value::Boolean(false)),
        (BinaryOp::Or, Some(true)) => return Ok(Value::Boolean(true)),
        _ => {}
    }
    let rb = as_bool(r)?;
    Ok(match (op, lb, rb) {
        (BinaryOp::And, Some(true), Some(true)) => Value::Boolean(true),
        (BinaryOp::And, _, Some(false)) => Value::Boolean(false),
        (BinaryOp::Or, Some(false), Some(false)) => Value::Boolean(false),
        (BinaryOp::Or, _, Some(true)) => Value::Boolean(true),
        _ => Value::Null,
    })
}

fn eval_arith(op: BinaryOp, l: &Value, r: &Value) -> FedResult<Value> {
    use BinaryOp::*;
    let rank = |v: &Value| v.data_type().and_then(|d| d.numeric_rank());
    let (Some(lr), Some(rr)) = (rank(l), rank(r)) else {
        return Err(FedError::execution(format!(
            "arithmetic on non-numeric operands {l} and {r}"
        )));
    };
    let out_rank = lr.max(rr);
    if out_rank <= 1 {
        let (a, b) = (l.as_i64().unwrap(), r.as_i64().unwrap());
        let res = match op {
            Add => a.checked_add(b),
            Sub => a.checked_sub(b),
            Mul => a.checked_mul(b),
            Div => {
                if b == 0 {
                    return Err(FedError::execution("division by zero"));
                }
                a.checked_div(b)
            }
            _ => unreachable!(),
        }
        .ok_or_else(|| FedError::execution("integer arithmetic overflow"))?;
        if out_rank == 0 {
            // INT op INT stays INT (DB2); overflow promotes is NOT done.
            let narrowed =
                i32::try_from(res).map_err(|_| FedError::execution("INT arithmetic overflow"))?;
            Ok(Value::Int(narrowed))
        } else {
            Ok(Value::BigInt(res))
        }
    } else {
        let (a, b) = (l.as_f64().unwrap(), r.as_f64().unwrap());
        let res = match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => {
                if b == 0.0 {
                    return Err(FedError::execution("division by zero"));
                }
                a / b
            }
            _ => unreachable!(),
        };
        Ok(Value::Double(res))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize, dt: DataType) -> BoundExpr {
        BoundExpr::Column {
            index: i,
            data_type: dt,
        }
    }

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn bin(l: BoundExpr, op: BinaryOp, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    #[test]
    fn column_and_param_lookup() {
        let row = vec![Value::Int(7)];
        let params = vec![Value::str("x")];
        assert_eq!(
            col(0, DataType::Int).eval(&row, &params).unwrap(),
            Value::Int(7)
        );
        let p = BoundExpr::Param {
            index: 0,
            data_type: DataType::Varchar,
        };
        assert_eq!(p.eval(&row, &params).unwrap(), Value::str("x"));
        assert!(col(5, DataType::Int).eval(&row, &params).is_err());
    }

    #[test]
    fn comparisons_are_three_valued() {
        let e = bin(lit(1), BinaryOp::Eq, lit(Value::Null));
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&[], &[]).unwrap());
        let e = bin(lit(2), BinaryOp::Lt, lit(3));
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn and_or_short_circuit_and_3vl() {
        let t = lit(true);
        let f = lit(false);
        let n = lit(Value::Null);
        assert_eq!(
            bin(f.clone(), BinaryOp::And, n.clone())
                .eval(&[], &[])
                .unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(
            bin(n.clone(), BinaryOp::And, t.clone())
                .eval(&[], &[])
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            bin(t.clone(), BinaryOp::Or, n.clone())
                .eval(&[], &[])
                .unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            bin(n.clone(), BinaryOp::Or, f.clone())
                .eval(&[], &[])
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn arithmetic_widening() {
        assert_eq!(
            bin(lit(2), BinaryOp::Add, lit(3)).eval(&[], &[]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            bin(lit(2i64), BinaryOp::Mul, lit(3))
                .eval(&[], &[])
                .unwrap(),
            Value::BigInt(6)
        );
        assert_eq!(
            bin(lit(1), BinaryOp::Div, lit(2.0)).eval(&[], &[]).unwrap(),
            Value::Double(0.5)
        );
    }

    #[test]
    fn division_by_zero_and_overflow() {
        assert!(bin(lit(1), BinaryOp::Div, lit(0)).eval(&[], &[]).is_err());
        assert!(bin(lit(i32::MAX), BinaryOp::Add, lit(1))
            .eval(&[], &[])
            .is_err());
        // The same sum as BIGINT is fine.
        assert_eq!(
            bin(lit(i32::MAX as i64), BinaryOp::Add, lit(1))
                .eval(&[], &[])
                .unwrap(),
            Value::BigInt(i32::MAX as i64 + 1)
        );
    }

    #[test]
    fn cast_and_is_null() {
        let e = BoundExpr::Cast {
            input: Box::new(lit(5)),
            to: DataType::BigInt,
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::BigInt(5));
        let e = BoundExpr::IsNull {
            input: Box::new(lit(Value::Null)),
            negated: false,
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn scalar_functions() {
        let e = BoundExpr::Scalar {
            f: ScalarFn::Upper,
            args: vec![lit("bolt")],
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::str("BOLT"));
        let e = BoundExpr::Scalar {
            f: ScalarFn::Length,
            args: vec![lit("bolt")],
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Int(4));
        let e = BoundExpr::Scalar {
            f: ScalarFn::Abs,
            args: vec![lit(-3)],
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Int(3));
        // NULL in, NULL out.
        let e = BoundExpr::Scalar {
            f: ScalarFn::Lower,
            args: vec![lit(Value::Null)],
        };
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::Null);
    }

    #[test]
    fn concat() {
        let e = bin(lit("Buy"), BinaryOp::Concat, lit("SuppComp"));
        assert_eq!(e.eval(&[], &[]).unwrap(), Value::str("BuySuppComp"));
        assert!(bin(lit(1), BinaryOp::Concat, lit("x"))
            .eval(&[], &[])
            .is_err());
    }

    #[test]
    fn static_types() {
        assert_eq!(
            bin(lit(1), BinaryOp::Add, lit(2i64)).data_type(),
            Some(DataType::BigInt)
        );
        assert_eq!(
            bin(lit(1), BinaryOp::Eq, lit(2)).data_type(),
            Some(DataType::Boolean)
        );
    }

    #[test]
    fn column_indexes_collected() {
        let e = bin(col(2, DataType::Int), BinaryOp::Eq, col(5, DataType::Int));
        assert_eq!(e.column_indexes(), vec![2, 5]);
    }
}
