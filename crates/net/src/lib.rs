//! # fedwf-net
//!
//! Network serving for the integration server: the paper's Fig. 2 places
//! the integration middleware between client applications and the
//! federated backends — this crate supplies the client/server boundary
//! of that picture, which the in-process crates deliberately left out.
//!
//! Three layers, bottom up:
//!
//! * [`frame`] — a length-prefixed, CRC-32-checked binary frame
//!   (`[len][crc][version][kind][body]`), reusing the relstore WAL's
//!   framing discipline and the in-tree checksum. Bodies are the
//!   `Request`/`Outcome`/`FedError` encodings of [`fedwf_core::wire`].
//! * [`server`] — [`NetServer`]: a `std::net::TcpListener` whose
//!   connection threads do I/O only and feed decoded requests into the
//!   existing [`ServerFront`](fedwf_core::ServerFront) admission queue.
//!   Bounded admission, per-call deadlines, shedding and graceful drain
//!   are therefore preserved end-to-end, with overload and timeout
//!   travelling as typed error frames.
//! * [`client`] — [`TcpClient`]: a pooled, reconnecting client that
//!   implements [`Submit`](fedwf_core::Submit), making the transport a
//!   swappable detail of any code written against `impl Submit`. Request
//!   deadlines propagate as remaining budget inside the frame.
//!
//! The `fedwf-server` binary (in the root package) wraps [`NetServer`]
//! around a booted paper setup; see README "Network mode" for the
//! quickstart and DESIGN.md §14 for the wire grammar.

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientConfig, TcpClient};
pub use frame::{FrameKind, MAX_FRAME_LEN, WIRE_VERSION};
pub use server::{NetServer, NetServerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use fedwf_core::{
        paper_functions, ArchitectureKind, FrontConfig, IntegrationServer, Request, ServerFront,
        Submit,
    };
    use fedwf_types::Value;
    use std::sync::Arc;
    use std::time::Duration;

    fn serve(config: FrontConfig) -> (NetServer, Arc<IntegrationServer>) {
        let server =
            Arc::new(IntegrationServer::with_architecture(ArchitectureKind::Wfms).unwrap());
        server.boot();
        server.deploy(&paper_functions::get_supp_qual()).unwrap();
        let front = Arc::new(ServerFront::start(Arc::clone(&server), config));
        let net = NetServer::start("127.0.0.1:0", front).unwrap();
        (net, server)
    }

    #[test]
    fn round_trip_over_loopback() {
        let (net, server) = serve(FrontConfig::default());
        let client = TcpClient::connect(net.local_addr()).unwrap();
        let supplier = server.scenario().well_known_supplier_name().to_string();
        let outcome = client
            .submit(Request::function("GetSuppQual").arg(supplier).traced(true))
            .unwrap();
        assert_eq!(outcome.table.value(0, "Qual"), Some(&Value::Int(93)));
        assert!(outcome.elapsed_us() > 0);
        assert!(outcome.trace.is_some(), "trace travels the wire");
        assert_eq!(net.metrics().counter("net.requests").get(), 1);
    }

    #[test]
    fn execution_errors_arrive_typed_and_connection_survives() {
        let (net, server) = serve(FrontConfig::default());
        let client = TcpClient::connect(net.local_addr()).unwrap();
        let err = client.submit(Request::function("NotDeployed")).unwrap_err();
        assert!(err.to_string().contains("not deployed"), "{err}");
        // Same connection keeps working after a typed error.
        let supplier = server.scenario().well_known_supplier_name().to_string();
        client
            .submit(Request::function("GetSuppQual").arg(supplier))
            .unwrap();
        assert_eq!(net.metrics().counter("net.connections").get(), 1);
    }

    #[test]
    fn zero_deadline_times_out_server_side() {
        let (net, server) = serve(FrontConfig::default());
        let client = TcpClient::connect(net.local_addr()).unwrap();
        let supplier = server.scenario().well_known_supplier_name().to_string();
        let err = client
            .submit(
                Request::function("GetSuppQual")
                    .arg(supplier)
                    .deadline(Duration::ZERO),
            )
            .unwrap_err();
        // The *server's* typed timeout, shipped back as an error frame —
        // not a client-side socket timeout.
        assert!(err.is_timeout(), "{err}");
        drop(net);
    }

    #[test]
    fn drain_finishes_in_flight_work() {
        let (net, server) = serve(FrontConfig::default().with_workers(2));
        let addr = net.local_addr();
        let supplier = server.scenario().well_known_supplier_name().to_string();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let supplier = supplier.clone();
                std::thread::spawn(move || {
                    let client = TcpClient::connect(addr).unwrap();
                    client.submit(Request::function("GetSuppQual").arg(supplier))
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap().unwrap();
        }
        net.shutdown(); // must not hang, must join all threads
    }

    #[test]
    fn stale_pooled_connection_reconnects() {
        let (net, server) = serve(FrontConfig::default());
        let addr = net.local_addr();
        let client = TcpClient::connect(addr).unwrap();
        let supplier = server.scenario().well_known_supplier_name().to_string();
        client
            .submit(Request::function("GetSuppQual").arg(supplier.clone()))
            .unwrap();
        // Kill the server; the pooled connection goes stale.
        net.shutdown();
        let front = Arc::new(ServerFront::start(
            Arc::clone(&server),
            FrontConfig::default(),
        ));
        let net2 = NetServer::start(addr, front);
        // Rebinding the exact port can race the OS; skip quietly if so.
        let Ok(net2) = net2 else { return };
        // First write to the stale socket fails → client redials → works.
        client
            .submit(Request::function("GetSuppQual").arg(supplier))
            .unwrap();
        drop(net2);
    }
}
