//! The frame layer: how request/outcome/error bodies travel a byte
//! stream.
//!
//! One frame is
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [version: u8] [kind: u8] [body ...]
//!               \_____________ CRC-32 covers version..body ______/
//!               \_____________ len counts version..body _________/
//! ```
//!
//! — the same length-prefix + checksum discipline as the relstore WAL
//! (and the same in-tree CRC-32 implementation,
//! [`fedwf_types::wire::crc32`]), applied to a socket instead of a log
//! file. The checksum is not about disk corruption here; it catches
//! desynchronized streams (a peer speaking a different dialect, a
//! half-written frame from a dying server) *before* the body decoder
//! runs, turning them into typed [`Protocol`](fedwf_types::ErrorLayer)
//! errors instead of garbage decodes.
//!
//! [`read_frame`] takes a `keep_waiting` callback because the two peers
//! wait differently: the server polls with a short read timeout so it can
//! notice shutdown between frames (return `true` to keep waiting), while
//! the client passes `|| false` so its read timeout — derived from the
//! request deadline — is final.

use std::io::{ErrorKind, Read, Write};

use fedwf_types::wire::crc32;
use fedwf_types::{FedError, FedResult};

/// Version byte of the protocol this build speaks. A frame carrying any
/// other version is rejected with a [`Protocol`](fedwf_types::ErrorLayer)
/// error naming both versions; bump it on any incompatible grammar
/// change (see DESIGN.md §14).
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on `len`. Far above any real table the workloads produce;
/// its job is to make a desynchronized length prefix fail fast instead of
/// attempting a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// What a frame's body contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: an encoded `Request` body.
    Request,
    /// Server → client: an encoded `Outcome` body.
    Outcome,
    /// Server → client: an encoded `FedError` body.
    Error,
}

impl FrameKind {
    pub fn tag(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Outcome => 2,
            FrameKind::Error => 3,
        }
    }

    pub fn from_tag(tag: u8) -> Option<FrameKind> {
        Some(match tag {
            1 => FrameKind::Request,
            2 => FrameKind::Outcome,
            3 => FrameKind::Error,
            _ => return None,
        })
    }
}

/// Write one frame. The whole frame is assembled into a single buffer and
/// written with one `write_all`, so a frame is never interleaved with
/// another writer's bytes and small replies cost one syscall.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, body: &[u8]) -> FedResult<()> {
    let payload_len = body.len() + 2;
    if payload_len > MAX_FRAME_LEN as usize {
        return Err(FedError::protocol(format!(
            "frame of {payload_len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut frame = Vec::with_capacity(8 + payload_len);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0, 0, 0, 0]); // crc placeholder
    frame.push(WIRE_VERSION);
    frame.push(kind.tag());
    frame.extend_from_slice(body);
    let crc = crc32(&frame[8..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| FedError::network(format!("frame write failed: {e}")))
}

/// Read one frame.
///
/// Returns `Ok(None)` on a *clean* close: the stream ended (or
/// `keep_waiting` said stop) exactly on a frame boundary. Ending
/// mid-frame is a [`Network`](fedwf_types::ErrorLayer) error; a bad CRC,
/// unknown version or unknown kind is a
/// [`Protocol`](fedwf_types::ErrorLayer) error.
///
/// `keep_waiting` is consulted whenever a read times out
/// (`WouldBlock`/`TimedOut` — the reader is expected to have a read
/// timeout configured): return `true` to keep waiting, `false` to give
/// up. Giving up between frames is a clean close; giving up mid-frame is
/// a network error.
pub fn read_frame(
    r: &mut impl Read,
    mut keep_waiting: impl FnMut() -> bool,
) -> FedResult<Option<(FrameKind, Vec<u8>)>> {
    let mut header = [0u8; 8];
    if !read_full(r, &mut header, &mut keep_waiting, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let want_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(FedError::protocol(format!(
            "frame length {len} outside [2, {MAX_FRAME_LEN}] — stream desynchronized?"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(r, &mut payload, &mut keep_waiting, false)? {
        unreachable!("read_full reports mid-frame close as an error");
    }
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(FedError::protocol(format!(
            "frame checksum mismatch: header says {want_crc:#010x}, payload hashes to {got_crc:#010x}"
        )));
    }
    if payload[0] != WIRE_VERSION {
        return Err(FedError::protocol(format!(
            "peer speaks wire version {}, this build speaks {WIRE_VERSION}",
            payload[0]
        )));
    }
    let kind = FrameKind::from_tag(payload[1])
        .ok_or_else(|| FedError::protocol(format!("unknown frame kind {}", payload[1])))?;
    payload.drain(..2);
    Ok(Some((kind, payload)))
}

/// Fill `buf` completely. Returns `Ok(false)` for a clean stop (EOF or
/// `keep_waiting() == false` before the first byte, only honoured when
/// `at_boundary`); errors for every unclean case.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    keep_waiting: &mut impl FnMut() -> bool,
    at_boundary: bool,
) -> FedResult<bool> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && at_boundary {
                    return Ok(false);
                }
                return Err(FedError::network("connection closed mid-frame"));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if keep_waiting() {
                    continue;
                }
                if got == 0 && at_boundary {
                    return Ok(false);
                }
                return Err(FedError::network("read timed out mid-frame"));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FedError::network(format!("read failed: {e}"))),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(kind: FrameKind, body: &[u8]) -> (FrameKind, Vec<u8>) {
        let mut wire = Vec::new();
        write_frame(&mut wire, kind, body).unwrap();
        read_frame(&mut Cursor::new(wire), || true)
            .unwrap()
            .expect("one frame present")
    }

    #[test]
    fn frame_round_trips() {
        let (kind, body) = roundtrip(FrameKind::Request, b"hello");
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(body, b"hello");
        let (kind, body) = roundtrip(FrameKind::Error, b"");
        assert_eq!(kind, FrameKind::Error);
        assert!(body.is_empty());
    }

    #[test]
    fn two_frames_in_sequence() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, b"a").unwrap();
        write_frame(&mut wire, FrameKind::Outcome, b"bb").unwrap();
        let mut cursor = Cursor::new(wire);
        assert_eq!(
            read_frame(&mut cursor, || true).unwrap(),
            Some((FrameKind::Request, b"a".to_vec()))
        );
        assert_eq!(
            read_frame(&mut cursor, || true).unwrap(),
            Some((FrameKind::Outcome, b"bb".to_vec()))
        );
        assert_eq!(read_frame(&mut cursor, || true).unwrap(), None);
    }

    #[test]
    fn eof_on_boundary_is_clean_mid_frame_is_not() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, b"payload").unwrap();
        // Clean EOF before any frame.
        assert_eq!(
            read_frame(&mut Cursor::new(&[][..]), || true).unwrap(),
            None
        );
        // Torn anywhere inside: a network error, never a silent None.
        for cut in 1..wire.len() {
            let err = read_frame(&mut Cursor::new(&wire[..cut]), || true).unwrap_err();
            assert!(err.is_network(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn corruption_is_a_protocol_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, b"payload").unwrap();
        // Flip one payload bit: CRC catches it.
        let mut bad = wire.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(read_frame(&mut Cursor::new(bad), || true)
            .unwrap_err()
            .is_protocol());
        // Wrong version byte (CRC recomputed so only the version differs).
        let mut versioned = wire.clone();
        versioned[8] = 9;
        let crc = crc32(&versioned[8..]);
        versioned[4..8].copy_from_slice(&crc.to_le_bytes());
        let err = read_frame(&mut Cursor::new(versioned), || true).unwrap_err();
        assert!(err.is_protocol());
        assert!(err.to_string().contains("version 9"), "{err}");
        // Absurd length prefix: rejected before allocating.
        let mut huge = wire;
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut Cursor::new(huge), || true)
            .unwrap_err()
            .is_protocol());
    }

    #[test]
    fn unknown_kind_is_a_protocol_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, b"x").unwrap();
        wire[9] = 77;
        let crc = crc32(&wire[8..]);
        wire[4..8].copy_from_slice(&crc.to_le_bytes());
        assert!(read_frame(&mut Cursor::new(wire), || true)
            .unwrap_err()
            .is_protocol());
    }

    /// A reader that yields `WouldBlock` between real chunks, like a
    /// socket with a read timeout under a slow sender.
    struct Chunked {
        chunks: Vec<Vec<u8>>,
        timeouts_first: bool,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.timeouts_first {
                self.timeouts_first = false;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            match self.chunks.first_mut() {
                None => Ok(0),
                Some(chunk) => {
                    let n = chunk.len().min(buf.len()).min(3);
                    buf[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.remove(0);
                    }
                    self.timeouts_first = true;
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn keep_waiting_rides_out_timeouts() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Outcome, b"slow but steady").unwrap();
        let mut reader = Chunked {
            chunks: vec![wire],
            timeouts_first: true,
        };
        let (kind, body) = read_frame(&mut reader, || true).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Outcome);
        assert_eq!(body, b"slow but steady");
    }

    #[test]
    fn giving_up_idle_is_clean_giving_up_mid_frame_is_an_error() {
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(ErrorKind::TimedOut))
            }
        }
        assert_eq!(read_frame(&mut AlwaysTimeout, || false).unwrap(), None);

        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Request, b"x").unwrap();
        let mut torn = Chunked {
            chunks: vec![wire[..5].to_vec()],
            timeouts_first: false,
        };
        let mut budget = 5;
        let err = read_frame(&mut torn, || {
            budget -= 1;
            budget > 0
        })
        .unwrap_err();
        assert!(err.is_network(), "{err}");
    }
}
