//! The TCP serving layer: a listener whose connections feed the
//! in-process admission front.
//!
//! Division of labour, per the middle-tier shape of the paper's Fig. 2:
//! connection threads do **I/O only** — read a frame, decode, hand the
//! request to the [`ServerFront`], encode the reply, write it back.
//! Admission control, the worker pool, per-call deadlines and load
//! shedding all stay in the front, so a server reached over TCP degrades
//! *identically* to one called in-process: a full queue sheds with
//! [`FedError::overloaded`], an expired deadline reports
//! [`FedError::timeout`], and both travel the wire as typed error frames
//! (satellite: the transport-equivalence suite asserts exactly this).
//!
//! Shutdown is graceful: the stop flag parks new accepts, connection
//! threads notice it between frames (they poll with a short read
//! timeout), requests already submitted to the front finish and their
//! replies are written before the connections close.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fedwf_core::wire::{decode_request, encode_error, encode_outcome};
use fedwf_core::ServerFront;
use fedwf_sim::MetricsRegistry;
use fedwf_types::sync::Mutex;
use fedwf_types::{FedError, FedResult};

use crate::frame::{read_frame, write_frame, FrameKind};

/// Tuning of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Read timeout of idle connection threads; bounds how long shutdown
    /// waits for them to notice the stop flag.
    pub poll_interval: Duration,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// A TCP server exposing one [`ServerFront`] over the wire protocol.
///
/// Listens on a `std::net` socket; every accepted connection gets a
/// thread that speaks frames (see [`crate::frame`]) and submits decoded
/// requests to the front. Connections are independent — a protocol error
/// on one closes that one connection, nothing else.
///
/// ```no_run
/// use fedwf_core::{ArchitectureKind, FrontConfig, IntegrationServer, ServerFront};
/// use fedwf_net::NetServer;
/// use std::sync::Arc;
///
/// let server = Arc::new(IntegrationServer::with_architecture(ArchitectureKind::Wfms)?);
/// server.boot();
/// let front = Arc::new(ServerFront::start(server, FrontConfig::default()));
/// let net = NetServer::start("127.0.0.1:0", front)?;
/// println!("serving on {}", net.local_addr());
/// # Ok::<(), fedwf_types::FedError>(())
/// ```
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics: Arc<MetricsRegistry>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// accepting. The front stays shared — in-process callers can keep
    /// using it concurrently.
    pub fn start(addr: impl ToSocketAddrs, front: Arc<ServerFront>) -> FedResult<NetServer> {
        NetServer::start_with(addr, front, NetServerConfig::default())
    }

    pub fn start_with(
        addr: impl ToSocketAddrs,
        front: Arc<ServerFront>,
        config: NetServerConfig,
    ) -> FedResult<NetServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| FedError::network(format!("bind failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| FedError::network(format!("local_addr failed: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let metrics = Arc::new(MetricsRegistry::new());

        let accept = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("fedwf-net-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &front, &stop, &connections, &metrics, &config)
                })
                .expect("spawn accept thread")
        };

        Ok(NetServer {
            local_addr,
            stop,
            accept: Some(accept),
            connections,
            metrics,
        })
    }

    /// The address actually bound — the one clients dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counters: `net.connections` (accepted so far), `net.requests`,
    /// `net.bad_frames` (connections dropped for protocol violations).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Stop accepting, let in-flight requests finish, join every thread.
    /// `Drop` does the same; this form just names the intent.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway local connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles = std::mem::take(&mut *self.connections.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    front: &Arc<ServerFront>,
    stop: &Arc<AtomicBool>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics: &Arc<MetricsRegistry>,
    config: &NetServerConfig,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection, or a race with shutdown
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue, // transient accept failure; keep serving
        };
        metrics.counter("net.connections").inc();
        let front = Arc::clone(front);
        let stop = Arc::clone(stop);
        let metrics = Arc::clone(metrics);
        let poll = config.poll_interval;
        let handle = std::thread::Builder::new()
            .name("fedwf-net-conn".into())
            .spawn(move || serve_connection(stream, &front, &stop, &metrics, poll))
            .expect("spawn connection thread");
        connections.lock().push(handle);
    }
}

/// One connection: frames in, frames out, until the peer hangs up or the
/// server drains. I/O only — every decoded request goes through the
/// front's admission queue like any in-process call.
fn serve_connection(
    stream: TcpStream,
    front: &ServerFront,
    stop: &AtomicBool,
    metrics: &MetricsRegistry,
    poll: Duration,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(poll));
    let mut reader = &stream;
    let mut writer = &stream;
    loop {
        let (kind, body) = match read_frame(&mut reader, || !stop.load(Ordering::SeqCst)) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // peer closed, or we are draining
            Err(e) => {
                // Desynchronized or torn stream: tell the peer if the pipe
                // still works, then drop the connection — per-connection
                // state is unrecoverable, the front is untouched.
                metrics.counter("net.bad_frames").inc();
                let _ = write_frame(&mut writer, FrameKind::Error, &encode_error(&e));
                return;
            }
        };
        if kind != FrameKind::Request {
            metrics.counter("net.bad_frames").inc();
            let err = FedError::protocol(format!(
                "client sent a {kind:?} frame; only Request frames flow client → server"
            ));
            let _ = write_frame(&mut writer, FrameKind::Error, &encode_error(&err));
            return;
        }
        metrics.counter("net.requests").inc();
        // A body that decodes is a well-formed conversation even if the
        // request itself fails — reply and keep the connection; only
        // framing-level trouble closes it.
        let reply = decode_request(&body).and_then(|request| front.execute(request));
        let written = match reply {
            Ok(outcome) => write_frame(&mut writer, FrameKind::Outcome, &encode_outcome(&outcome)),
            Err(e) => write_frame(&mut writer, FrameKind::Error, &encode_error(&e)),
        };
        if written.is_err() {
            return; // peer gone mid-reply; nothing to salvage
        }
        let _ = writer.flush();
    }
}
