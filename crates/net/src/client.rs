//! The network client: [`TcpClient`] implements
//! [`Submit`], so code written against `impl Submit`
//! moves from in-process to over-the-wire by swapping one value.
//!
//! Mechanics per call:
//!
//! 1. **Connection pool.** Idle connections are kept in a stack; a call
//!    pops one or dials a fresh one. N threads submitting concurrently
//!    grow the pool to N connections organically; at most
//!    [`ClientConfig::pool_size`] are retained afterwards.
//! 2. **Deadline propagation.** A request deadline travels as *remaining
//!    budget*: the client subtracts its own elapsed time (pool checkout,
//!    dialing) before encoding, so the server's admission queue honours
//!    what is actually left — no clock synchronization involved. The
//!    client's read timeout is that budget plus a grace window, giving
//!    the server first claim on reporting the timeout as a typed error
//!    frame (the transport-equivalence suite relies on this: a
//!    `Duration::ZERO` deadline produces the *server's*
//!    [`FedError::timeout`], identical to the in-process front's).
//! 3. **Reconnect.** If *writing* to a pooled connection fails (a server
//!    restart leaves stale sockets behind), the request provably never
//!    arrived, so the client redials once and resends. Failures after the
//!    write — lost replies — are reported as network errors, never
//!    retried: the request may have executed, and the client cannot know.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use fedwf_core::wire::{decode_error, decode_outcome, encode_request};
use fedwf_core::{Outcome, Request, Submit};
use fedwf_types::sync::Mutex;
use fedwf_types::{FedError, FedResult};

use crate::frame::{read_frame, write_frame, FrameKind};

/// Tuning of a [`TcpClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Idle connections retained in the pool; calls beyond this still
    /// work (they dial and the surplus connection is closed afterwards).
    pub pool_size: usize,
    /// Timeout for dialing the server.
    pub connect_timeout: Duration,
    /// Extra wait beyond a request's deadline before the client gives up
    /// on the reply. Within the grace window the server reports deadline
    /// expiry itself, as a typed error frame.
    pub reply_grace: Duration,
    /// Read timeout for requests without a deadline. `None` waits
    /// forever; the default bounds a hung server at 60 s.
    pub idle_read_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            pool_size: 16,
            connect_timeout: Duration::from_secs(5),
            reply_grace: Duration::from_secs(5),
            idle_read_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// A pooled TCP client for a `fedwf` network server, usable wherever an
/// `impl Submit` is expected.
pub struct TcpClient {
    addr: SocketAddr,
    pool: Mutex<Vec<TcpStream>>,
    config: ClientConfig,
}

impl TcpClient {
    /// Dial `addr` once (validating the server is reachable) and keep the
    /// connection pooled for the first call.
    pub fn connect(addr: impl ToSocketAddrs) -> FedResult<TcpClient> {
        TcpClient::connect_with(addr, ClientConfig::default())
    }

    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> FedResult<TcpClient> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| FedError::network(format!("address resolution failed: {e}")))?
            .next()
            .ok_or_else(|| FedError::network("address resolved to nothing"))?;
        let client = TcpClient {
            addr,
            pool: Mutex::new(Vec::new()),
            config,
        };
        let probe = client.dial()?;
        client.check_in(probe);
        Ok(client)
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Idle connections currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }

    fn dial(&self) -> FedResult<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| FedError::network(format!("connect to {} failed: {e}", self.addr)))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// Pop a pooled connection, discarding dead ones. A server that went
    /// away leaves a FIN (or RST) queued on the socket; a non-blocking
    /// one-byte peek surfaces it without consuming reply data — an alive,
    /// idle connection has nothing to read and reports `WouldBlock`.
    fn check_out(&self) -> Option<TcpStream> {
        loop {
            let stream = self.pool.lock().pop()?;
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let alive = match stream.peek(&mut [0u8; 1]) {
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
                // EOF, an error, or stray bytes outside a call: all dead.
                _ => false,
            };
            if alive && stream.set_nonblocking(false).is_ok() {
                return Some(stream);
            }
        }
    }

    fn check_in(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.config.pool_size {
            pool.push(stream);
        } // else drop: closes the surplus connection
    }

    /// One request/reply exchange on `stream`. `Err` in the outer layer
    /// means the *write* failed (safe to retry on a fresh connection);
    /// the inner `FedResult` is the call's actual result.
    fn exchange(
        &self,
        stream: &mut TcpStream,
        request: &Request,
        started: Instant,
    ) -> Result<FedResult<Outcome>, FedError> {
        let budget = request
            .deadline_opt()
            .map(|d| d.saturating_sub(started.elapsed()));
        let body = encode_request(request, budget);
        write_frame(stream, FrameKind::Request, &body)
            .map_err(|e| e.with_context(format!("sending {}", request.label())))?;
        let read_timeout = match budget {
            // Never Some(ZERO): that means "no timeout" to the socket API.
            Some(b) => Some((b + self.config.reply_grace).max(Duration::from_millis(1))),
            None => self.config.idle_read_timeout,
        };
        let _ = stream.set_read_timeout(read_timeout);
        Ok(self.read_reply(stream, request))
    }

    fn read_reply(&self, stream: &mut TcpStream, request: &Request) -> FedResult<Outcome> {
        let frame = read_frame(stream, || false)
            .map_err(|e| e.with_context(format!("awaiting reply for {}", request.label())))?;
        match frame {
            Some((FrameKind::Outcome, body)) => decode_outcome(&body),
            Some((FrameKind::Error, body)) => Err(decode_error(&body)?),
            Some((FrameKind::Request, _)) => Err(FedError::protocol(
                "server sent a Request frame; only Outcome/Error flow server → client",
            )),
            None => Err(FedError::network(format!(
                "server closed the connection before replying to {}; \
                 the request may or may not have executed",
                request.label()
            ))),
        }
    }
}

impl Submit for TcpClient {
    /// Execute `request` on the remote server. Successful calls and typed
    /// server errors (execution failures, overload, timeout) return the
    /// connection to the pool; transport-level failures close it.
    fn submit(&self, request: Request) -> FedResult<Outcome> {
        let started = Instant::now();
        if let Some(mut pooled) = self.check_out() {
            match self.exchange(&mut pooled, &request, started) {
                Ok(result) => {
                    if result_keeps_connection(&result) {
                        self.check_in(pooled);
                    }
                    return result;
                }
                // Write to a pooled connection failed: stale socket. The
                // request never reached the server — redial and resend.
                Err(_stale) => drop(pooled),
            }
        }
        let mut fresh = self.dial()?;
        let result = self
            .exchange(&mut fresh, &request, started)
            .unwrap_or_else(Err);
        if result_keeps_connection(&result) {
            self.check_in(fresh);
        }
        result
    }
}

/// A connection stays poolable unless the failure was transport-level —
/// after a network/protocol error the stream position is unknown.
fn result_keeps_connection(result: &FedResult<Outcome>) -> bool {
    match result {
        Ok(_) => true,
        Err(e) => !e.is_network() && !e.is_protocol(),
    }
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("addr", &self.addr)
            .field("pooled", &self.pooled())
            .finish()
    }
}
