//! Typed columnar batches for the vectorized executor.
//!
//! A [`ColumnBatch`] is the column-oriented counterpart of a `Vec<Row>`
//! batch: one typed vector per column (`Vec<i32>`, `Vec<i64>`, `Vec<f64>`,
//! offsets-into-bytes for VARCHAR) plus a validity bitmap marking non-NULL
//! slots. Values never carry per-row allocations while they flow through
//! the pipeline; `Row`s are materialized only at pipeline breakers and at
//! the client boundary ([`ColumnBatch::to_rows`]).
//!
//! Expression outputs whose type cannot be pinned statically (e.g. `ABS`
//! preserves its input type even though its declared type is DOUBLE) land
//! in the heterogeneous [`ColumnData::Values`] fallback, which keeps the
//! batch shape without constraining the value types. A typed builder that
//! observes a value of the wrong type degrades to that fallback instead of
//! failing, so columnar construction is always total.

use std::sync::Arc;

use crate::row::{Row, SchemaRef, Table};
use crate::value::{DataType, Value};

/// Per-column storage: typed vectors for the SQL scalar types, an
/// offsets-into-bytes encoding for VARCHAR, and a boxed-value fallback for
/// heterogeneous expression outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i32>),
    BigInt(Vec<i64>),
    Double(Vec<f64>),
    Boolean(Vec<bool>),
    /// `offsets.len() == len + 1`; string `i` is `bytes[offsets[i]..offsets[i+1]]`.
    Varchar {
        offsets: Vec<u32>,
        bytes: Vec<u8>,
    },
    /// Heterogeneous fallback: one boxed [`Value`] per row (NULLs inline).
    Values(Vec<Value>),
}

/// One column of a batch: data plus a validity bitmap (bit set = non-NULL).
/// NULL slots hold an arbitrary default in the typed vectors; the bitmap is
/// authoritative. The `Values` fallback stores `Value::Null` inline and
/// keeps its bitmap consistent anyway so consumers can branch on either.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVec {
    pub data: ColumnData,
    /// One bit per row, little-endian within each `u64` word.
    pub validity: Vec<u64>,
}

#[inline]
fn bit_get(bits: &[u64], i: usize) -> bool {
    bits[i / 64] & (1u64 << (i % 64)) != 0
}

#[inline]
fn bit_set(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1u64 << (i % 64);
}

fn bitmap_words(len: usize) -> usize {
    len.div_ceil(64)
}

/// An all-ones validity bitmap for `len` rows (high bits of the last word
/// zeroed, matching what the builder produces for all-valid input).
fn full_bitmap(len: usize) -> Vec<u64> {
    let mut bits = vec![0u64; bitmap_words(len)];
    for i in 0..len {
        bit_set(&mut bits, i);
    }
    bits
}

impl ColumnVec {
    /// Whether row `i` is non-NULL.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        bit_get(&self.validity, i)
    }

    /// The VARCHAR payload of row `i` without materializing a `Value`.
    /// `None` when the row is NULL or the column is not VARCHAR-encoded.
    pub fn str_at(&self, i: usize) -> Option<&str> {
        if !self.is_valid(i) {
            return None;
        }
        match &self.data {
            ColumnData::Varchar { offsets, bytes } => {
                let (a, b) = (offsets[i] as usize, offsets[i + 1] as usize);
                // SAFETY: the builder only ever appends whole `&str` slices
                // and records offsets at their ends, so every offset pair
                // brackets valid UTF-8. Re-validating here would put an
                // O(len) scan in the per-row boundary path.
                Some(unsafe { std::str::from_utf8_unchecked(&bytes[a..b]) })
            }
            ColumnData::Values(vals) => vals[i].as_str(),
            _ => None,
        }
    }

    /// Whether every one of the first `len` slots is non-NULL — the gate
    /// for bulk kernels that skip per-row validity checks.
    pub fn all_valid(&self, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        let words = bitmap_words(len);
        for (w, bits) in self.validity.iter().enumerate().take(words) {
            let expect = if (w + 1) * 64 <= len {
                u64::MAX
            } else {
                (1u64 << (len % 64)) - 1
            };
            if bits & expect != expect {
                return false;
            }
        }
        true
    }

    /// Materialize row `i` as a boxed [`Value`] (allocates for VARCHAR).
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::BigInt(v) => Value::BigInt(v[i]),
            ColumnData::Double(v) => Value::Double(v[i]),
            ColumnData::Boolean(v) => Value::Boolean(v[i]),
            ColumnData::Varchar { .. } => {
                Value::Varchar(Arc::from(self.str_at(i).expect("valid varchar slot")))
            }
            ColumnData::Values(vals) => vals[i].clone(),
        }
    }

    /// Boxed values for rows `sel[..take]` (or `0..take` without a
    /// selection), dispatching on the column type once instead of per
    /// value. `len` is the column's logical row count (for the all-valid
    /// fast paths). This is the row-materialization boundary's bulk form
    /// of [`ColumnVec::value_at`].
    pub fn values_selected(&self, len: usize, sel: Option<&[u32]>, take: usize) -> Vec<Value> {
        let mut out = Vec::with_capacity(take);
        match (&self.data, self.all_valid(len)) {
            (ColumnData::Int(v), true) => match sel {
                Some(s) => out.extend(s[..take].iter().map(|&i| Value::Int(v[i as usize]))),
                None => out.extend(v[..take].iter().map(|&x| Value::Int(x))),
            },
            (ColumnData::BigInt(v), true) => match sel {
                Some(s) => out.extend(s[..take].iter().map(|&i| Value::BigInt(v[i as usize]))),
                None => out.extend(v[..take].iter().map(|&x| Value::BigInt(x))),
            },
            (ColumnData::Double(v), true) => match sel {
                Some(s) => out.extend(s[..take].iter().map(|&i| Value::Double(v[i as usize]))),
                None => out.extend(v[..take].iter().map(|&x| Value::Double(x))),
            },
            (ColumnData::Boolean(v), true) => match sel {
                Some(s) => out.extend(s[..take].iter().map(|&i| Value::Boolean(v[i as usize]))),
                None => out.extend(v[..take].iter().map(|&x| Value::Boolean(x))),
            },
            (ColumnData::Varchar { offsets, bytes }, true) => {
                for k in 0..take {
                    let i = sel.map_or(k, |s| s[k] as usize);
                    let (a, b) = (offsets[i] as usize, offsets[i + 1] as usize);
                    // SAFETY: builders only ever append whole `&str`
                    // slices, so any offset pair bounds valid UTF-8.
                    let s = unsafe { std::str::from_utf8_unchecked(&bytes[a..b]) };
                    out.push(Value::str(s));
                }
            }
            _ => {
                for k in 0..take {
                    let i = sel.map_or(k, |s| s[k] as usize);
                    out.push(self.value_at(i));
                }
            }
        }
        out
    }

    /// Column footprint for the `bytes_materialized` accounting: the typed
    /// vector's logical payload plus the validity bitmap. The boxed
    /// fallback is priced like the rows it stands in for.
    pub fn approx_bytes(&self, len: usize) -> usize {
        let data = match &self.data {
            ColumnData::Int(_) => 4 * len,
            ColumnData::BigInt(_) | ColumnData::Double(_) => 8 * len,
            ColumnData::Boolean(_) => len,
            ColumnData::Varchar { offsets, bytes } => 4 * offsets.len() + bytes.len(),
            ColumnData::Values(vals) => vals.iter().map(Value::approx_bytes).sum(),
        };
        data + 8 * self.validity.len()
    }

    /// Rows `sel` of this column, in `sel` order, as a new column. `len`
    /// is the column's logical row count (for the all-valid bulk paths).
    pub fn gather(&self, sel: &[u32], len: usize) -> ColumnVec {
        // Fully valid columns gather with straight indexed copies — no
        // per-row bitmap reads, no builder dispatch.
        if self.all_valid(len) {
            let validity = full_bitmap(sel.len());
            match &self.data {
                ColumnData::Int(v) => {
                    return ColumnVec {
                        data: ColumnData::Int(sel.iter().map(|&i| v[i as usize]).collect()),
                        validity,
                    }
                }
                ColumnData::BigInt(v) => {
                    return ColumnVec {
                        data: ColumnData::BigInt(sel.iter().map(|&i| v[i as usize]).collect()),
                        validity,
                    }
                }
                ColumnData::Double(v) => {
                    return ColumnVec {
                        data: ColumnData::Double(sel.iter().map(|&i| v[i as usize]).collect()),
                        validity,
                    }
                }
                ColumnData::Boolean(v) => {
                    return ColumnVec {
                        data: ColumnData::Boolean(sel.iter().map(|&i| v[i as usize]).collect()),
                        validity,
                    }
                }
                ColumnData::Varchar { offsets, bytes } => {
                    let total: usize = sel
                        .iter()
                        .map(|&i| (offsets[i as usize + 1] - offsets[i as usize]) as usize)
                        .sum();
                    let mut no = Vec::with_capacity(sel.len() + 1);
                    no.push(0u32);
                    let mut nb = Vec::with_capacity(total);
                    for &i in sel {
                        let (a, b) = (
                            offsets[i as usize] as usize,
                            offsets[i as usize + 1] as usize,
                        );
                        nb.extend_from_slice(&bytes[a..b]);
                        no.push(nb.len() as u32);
                    }
                    return ColumnVec {
                        data: ColumnData::Varchar {
                            offsets: no,
                            bytes: nb,
                        },
                        validity,
                    };
                }
                ColumnData::Values(_) => {}
            }
        }
        let mut b = ColumnBuilder::with_capacity(self.builder_type(), sel.len());
        match &self.data {
            ColumnData::Int(v) => {
                for &i in sel {
                    let i = i as usize;
                    if self.is_valid(i) {
                        b.push_int(v[i]);
                    } else {
                        b.push_null();
                    }
                }
            }
            ColumnData::BigInt(v) => {
                for &i in sel {
                    let i = i as usize;
                    if self.is_valid(i) {
                        b.push_bigint(v[i]);
                    } else {
                        b.push_null();
                    }
                }
            }
            ColumnData::Double(v) => {
                for &i in sel {
                    let i = i as usize;
                    if self.is_valid(i) {
                        b.push_double(v[i]);
                    } else {
                        b.push_null();
                    }
                }
            }
            _ => {
                for &i in sel {
                    let i = i as usize;
                    match self.str_at(i) {
                        Some(s) => b.push_str(s),
                        None => b.push(&self.value_at(i)),
                    }
                }
            }
        }
        b.finish()
    }

    fn builder_type(&self) -> Option<DataType> {
        match &self.data {
            ColumnData::Int(_) => Some(DataType::Int),
            ColumnData::BigInt(_) => Some(DataType::BigInt),
            ColumnData::Double(_) => Some(DataType::Double),
            ColumnData::Boolean(_) => Some(DataType::Boolean),
            ColumnData::Varchar { .. } => Some(DataType::Varchar),
            ColumnData::Values(_) => None,
        }
    }
}

/// Incremental, type-degrading column constructor. Starts out typed (when
/// a [`DataType`] is known) and falls back to [`ColumnData::Values`] the
/// first time a value of another type arrives.
#[derive(Debug)]
pub struct ColumnBuilder {
    data: ColumnData,
    validity: Vec<u64>,
    len: usize,
}

impl ColumnBuilder {
    pub fn new(dt: Option<DataType>) -> ColumnBuilder {
        Self::with_capacity(dt, 0)
    }

    pub fn with_capacity(dt: Option<DataType>, cap: usize) -> ColumnBuilder {
        let data = match dt {
            Some(DataType::Int) => ColumnData::Int(Vec::with_capacity(cap)),
            Some(DataType::BigInt) => ColumnData::BigInt(Vec::with_capacity(cap)),
            Some(DataType::Double) => ColumnData::Double(Vec::with_capacity(cap)),
            Some(DataType::Boolean) => ColumnData::Boolean(Vec::with_capacity(cap)),
            Some(DataType::Varchar) => ColumnData::Varchar {
                offsets: {
                    let mut o = Vec::with_capacity(cap + 1);
                    o.push(0);
                    o
                },
                // Payload size is unknowable up front; seed with a small
                // per-row guess so early appends skip the doubling churn.
                bytes: Vec::with_capacity(cap.saturating_mul(8)),
            },
            None => ColumnData::Values(Vec::with_capacity(cap)),
        };
        ColumnBuilder {
            data,
            validity: Vec::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn grow_validity(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.validity.len() {
            self.validity.push(0);
        }
        if valid {
            bit_set(&mut self.validity, self.len);
        }
        self.len += 1;
    }

    /// Append a NULL (typed vectors get a default slot; the fallback gets
    /// an inline `Value::Null`).
    pub fn push_null(&mut self) {
        match &mut self.data {
            ColumnData::Int(v) => v.push(0),
            ColumnData::BigInt(v) => v.push(0),
            ColumnData::Double(v) => v.push(0.0),
            ColumnData::Boolean(v) => v.push(false),
            ColumnData::Varchar { offsets, bytes } => offsets.push(bytes.len() as u32),
            ColumnData::Values(vals) => vals.push(Value::Null),
        }
        self.grow_validity(false);
    }

    #[inline]
    pub fn push_int(&mut self, x: i32) {
        if let ColumnData::Int(v) = &mut self.data {
            v.push(x);
            self.grow_validity(true);
        } else {
            self.push(&Value::Int(x));
        }
    }

    #[inline]
    pub fn push_bigint(&mut self, x: i64) {
        if let ColumnData::BigInt(v) = &mut self.data {
            v.push(x);
            self.grow_validity(true);
        } else {
            self.push(&Value::BigInt(x));
        }
    }

    #[inline]
    pub fn push_double(&mut self, x: f64) {
        if let ColumnData::Double(v) = &mut self.data {
            v.push(x);
            self.grow_validity(true);
        } else {
            self.push(&Value::Double(x));
        }
    }

    #[inline]
    pub fn push_bool(&mut self, x: bool) {
        if let ColumnData::Boolean(v) = &mut self.data {
            v.push(x);
            self.grow_validity(true);
        } else {
            self.push(&Value::Boolean(x));
        }
    }

    /// Append a string without routing through a boxed [`Value`].
    #[inline]
    pub fn push_str(&mut self, s: &str) {
        if let ColumnData::Varchar { offsets, bytes } = &mut self.data {
            bytes.extend_from_slice(s.as_bytes());
            offsets.push(bytes.len() as u32);
            self.grow_validity(true);
        } else {
            self.push(&Value::str(s));
        }
    }

    /// Append any value; a type mismatch degrades the column to the boxed
    /// fallback (rebuilding what was accumulated so far) instead of erring.
    pub fn push(&mut self, v: &Value) {
        match (&mut self.data, v) {
            (_, Value::Null) => {
                self.push_null();
                return;
            }
            (ColumnData::Int(col), Value::Int(x)) => col.push(*x),
            (ColumnData::BigInt(col), Value::BigInt(x)) => col.push(*x),
            (ColumnData::Double(col), Value::Double(x)) => col.push(*x),
            (ColumnData::Boolean(col), Value::Boolean(x)) => col.push(*x),
            (ColumnData::Varchar { offsets, bytes }, Value::Varchar(s)) => {
                bytes.extend_from_slice(s.as_bytes());
                offsets.push(bytes.len() as u32);
            }
            (ColumnData::Values(vals), v) => vals.push(v.clone()),
            _ => {
                self.degrade();
                if let ColumnData::Values(vals) = &mut self.data {
                    vals.push(v.clone());
                } else {
                    unreachable!("degrade produces the boxed fallback");
                }
            }
        }
        self.grow_validity(true);
    }

    /// Rebuild the accumulated column as [`ColumnData::Values`].
    fn degrade(&mut self) {
        let snapshot = ColumnVec {
            data: std::mem::replace(&mut self.data, ColumnData::Values(Vec::new())),
            validity: self.validity.clone(),
        };
        let vals: Vec<Value> = (0..self.len).map(|i| snapshot.value_at(i)).collect();
        self.data = ColumnData::Values(vals);
    }

    pub fn finish(self) -> ColumnVec {
        ColumnVec {
            data: self.data,
            validity: self.validity,
        }
    }
}

/// A batch of rows in columnar layout. Columns are reference-counted so
/// projection and column-identity expressions are refcount bumps, never
/// copies.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    len: usize,
    columns: Vec<Arc<ColumnVec>>,
}

impl ColumnBatch {
    pub fn new(len: usize, columns: Vec<Arc<ColumnVec>>) -> ColumnBatch {
        debug_assert!(columns
            .iter()
            .all(|c| c.validity.len() == bitmap_words(len)));
        ColumnBatch { len, columns }
    }

    /// A zero-column batch of `len` rows — the columnar seed row is
    /// `ColumnBatch::empty_rows(1)`.
    pub fn empty_rows(len: usize) -> ColumnBatch {
        ColumnBatch {
            len,
            columns: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[Arc<ColumnVec>] {
        &self.columns
    }

    pub fn column(&self, i: usize) -> Option<&Arc<ColumnVec>> {
        self.columns.get(i)
    }

    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.columns[col].value_at(row)
    }

    /// Materialize row `i` (the boundary operation the batch layout exists
    /// to defer).
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value_at(i)).collect())
    }

    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Materialize into a [`Table`] (client boundary). The schema is the
    /// caller's: batches do not carry names.
    pub fn to_table(&self, schema: SchemaRef) -> Table {
        let mut t = Table::new(schema);
        for i in 0..self.len {
            t.push_unchecked(self.row(i));
        }
        t
    }

    /// Columnar encoding of a materialized table, typed by its schema.
    pub fn from_table(table: &Table) -> ColumnBatch {
        let types: Vec<DataType> = table
            .schema()
            .columns()
            .iter()
            .map(|c| c.data_type)
            .collect();
        Self::from_rows(&types, table.rows())
    }

    /// Columnar encoding of a row set with known column types.
    pub fn from_rows(types: &[DataType], rows: &[Row]) -> ColumnBatch {
        let mut builders: Vec<ColumnBuilder> = types
            .iter()
            .map(|dt| ColumnBuilder::with_capacity(Some(*dt), rows.len()))
            .collect();
        for row in rows {
            for (b, v) in builders.iter_mut().zip(row.values()) {
                b.push(v);
            }
        }
        ColumnBatch {
            len: rows.len(),
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
        }
    }

    /// Rows `sel`, in order, as a new batch (the selection-vector apply).
    pub fn gather(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            len: sel.len(),
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.gather(sel, self.len)))
                .collect(),
        }
    }

    /// The first `n` rows (LIMIT truncation at a batch boundary).
    pub fn head(&self, n: usize) -> ColumnBatch {
        if n >= self.len {
            return self.clone();
        }
        let sel: Vec<u32> = (0..n as u32).collect();
        self.gather(&sel)
    }

    /// Batch footprint in column-vector bytes (validity bitmaps included) —
    /// what `bytes_materialized` counts for columnar batches.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes(self.len)).sum()
    }

    /// Column-vector bytes of the rows `sel` selects — what a
    /// [`ColumnBatch::gather`] of `sel` would occupy, without building it.
    pub fn approx_bytes_selected(&self, sel: &[u32]) -> usize {
        let fixed = 8 * bitmap_words(sel.len());
        self.columns
            .iter()
            .map(|c| {
                fixed
                    + match &c.data {
                        ColumnData::Int(_) => 4 * sel.len(),
                        ColumnData::BigInt(_) | ColumnData::Double(_) => 8 * sel.len(),
                        ColumnData::Boolean(_) => sel.len(),
                        ColumnData::Varchar { offsets, .. } => {
                            4 * (sel.len() + 1)
                                + sel
                                    .iter()
                                    .map(|&i| {
                                        (offsets[i as usize + 1] - offsets[i as usize]) as usize
                                    })
                                    .sum::<usize>()
                        }
                        ColumnData::Values(vals) => sel
                            .iter()
                            .map(|&i| vals[i as usize].approx_bytes())
                            .sum::<usize>(),
                    }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::Ident;
    use crate::row::{Column, Schema};

    fn batch_of(types: &[DataType], rows: Vec<Vec<Value>>) -> ColumnBatch {
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        ColumnBatch::from_rows(types, &rows)
    }

    #[test]
    fn round_trips_rows_including_nulls_and_empty_strings() {
        let b = batch_of(
            &[DataType::Int, DataType::Varchar, DataType::Double],
            vec![
                vec![Value::Int(1), Value::str(""), Value::Double(0.5)],
                vec![Value::Null, Value::str("abc"), Value::Null],
                vec![Value::Int(-7), Value::Null, Value::Double(-1.0)],
            ],
        );
        assert_eq!(b.len(), 3);
        assert_eq!(b.value_at(1, 0), Value::str(""));
        assert_eq!(b.value_at(0, 1), Value::Null);
        assert_eq!(b.value_at(1, 2), Value::Null);
        let rows = b.to_rows();
        assert_eq!(rows[2].values()[0], Value::Int(-7));
        assert_eq!(rows[1].values()[1], Value::str("abc"));
    }

    #[test]
    fn gather_applies_a_selection_vector() {
        let b = batch_of(
            &[DataType::Int, DataType::Varchar],
            vec![
                vec![Value::Int(10), Value::str("a")],
                vec![Value::Null, Value::str("")],
                vec![Value::Int(30), Value::Null],
            ],
        );
        let g = b.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.value_at(0, 0), Value::Int(30));
        assert_eq!(g.value_at(1, 0), Value::Null);
        assert_eq!(g.value_at(0, 1), Value::Int(10));
        assert_eq!(g.value_at(1, 1), Value::str("a"));
    }

    #[test]
    fn builder_degrades_to_boxed_values_on_type_mismatch() {
        let mut b = ColumnBuilder::new(Some(DataType::Double));
        b.push(&Value::Double(1.5));
        b.push(&Value::Int(2)); // ABS(INT) stays INT despite a DOUBLE decl
        b.push(&Value::Null);
        let col = b.finish();
        assert!(matches!(col.data, ColumnData::Values(_)));
        assert_eq!(col.value_at(0), Value::Double(1.5));
        assert_eq!(col.value_at(1), Value::Int(2));
        assert_eq!(col.value_at(2), Value::Null);
    }

    #[test]
    fn approx_bytes_counts_columns_and_validity() {
        let b = batch_of(
            &[DataType::Int],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        // 2 * 4 data bytes + one u64 validity word.
        assert_eq!(b.approx_bytes(), 8 + 8);
    }

    #[test]
    fn to_table_matches_schema() {
        let schema = std::sync::Arc::new(Schema::new(vec![Column::new(
            Ident::new("n"),
            DataType::BigInt,
        )]));
        let b = batch_of(&[DataType::BigInt], vec![vec![Value::BigInt(42)]]);
        let t = b.to_table(schema);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.rows()[0].values()[0], Value::BigInt(42));
    }

    #[test]
    fn head_truncates_at_batch_boundaries() {
        let b = batch_of(
            &[DataType::Int],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)],
            ],
        );
        assert_eq!(b.head(2).len(), 2);
        assert_eq!(b.head(9).len(), 3);
        assert_eq!(b.head(2).value_at(0, 1), Value::Int(2));
    }
}
