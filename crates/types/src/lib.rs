//! # fedwf-types
//!
//! Foundation crate of the *fedwf* workspace: the dynamically typed value
//! model, schemas, rows and tables shared by the relational storage engine,
//! the SQL layer, the workflow engine and the application systems, plus the
//! workspace-wide error type.
//!
//! The type lattice intentionally mirrors the small set of SQL types the
//! paper's examples use (`INT`, `BIGINT`, `DOUBLE`, `VARCHAR`, `BOOLEAN`),
//! including the explicit `INT -> BIGINT` widening cast that the *simple
//! case* mapping of Section 3 demonstrates with `BIGINT(GN.Number)`.

pub mod batch;
pub mod cast;
pub mod check;
pub mod error;
pub mod ident;
pub mod params;
pub mod rng;
pub mod row;
pub mod sync;
pub mod txn;
pub mod value;
pub mod wire;

pub use batch::{ColumnBatch, ColumnBuilder, ColumnData, ColumnVec};
pub use cast::{cast_value, implicit_cast, CastError};
pub use error::{ErrorLayer, FedError, FedResult, ResultExt};
pub use ident::{Ident, QualifiedName};
pub use params::Params;
pub use row::{Column, Row, Schema, SchemaRef, Table};
pub use txn::{CommitMode, TxnId, TXN_EPOCH_ZERO, TXN_INFINITY};
pub use value::{DataType, Value, ValueKey};
pub use wire::{crc32, WireReader, WireWriter};
