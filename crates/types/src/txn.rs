//! Transaction / statement identifiers shared by the storage engine and
//! anything that pins a read snapshot against it.
//!
//! The relational store runs single-writer, multi-reader: every committed
//! statement gets the next [`TxnId`], and the database's *commit epoch* is
//! the id of the last committed statement. A reader pins an epoch `e` and
//! sees exactly the versions with `begin <= e < end` — so `TxnId` doubles
//! as the snapshot-epoch type.

/// Monotonically increasing statement/transaction identifier. Also used as
/// a snapshot epoch: "the state after statement `n` committed".
pub type TxnId = u64;

/// Epoch 0: the empty database, before any statement committed.
pub const TXN_EPOCH_ZERO: TxnId = 0;

/// Sentinel `end` marker of a live (not yet superseded) row version.
pub const TXN_INFINITY: TxnId = u64::MAX;

/// Visibility rule shared by scans and recovery checks: a version written
/// by `begin` and superseded at `end` is visible to a snapshot at `epoch`.
#[inline]
pub fn version_visible(begin: TxnId, end: TxnId, epoch: TxnId) -> bool {
    begin <= epoch && epoch < end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_window() {
        // Written by txn 3, still live.
        assert!(!version_visible(3, TXN_INFINITY, 2));
        assert!(version_visible(3, TXN_INFINITY, 3));
        assert!(version_visible(3, TXN_INFINITY, 100));
        // Written by txn 3, superseded by txn 7.
        assert!(version_visible(3, 7, 6));
        assert!(!version_visible(3, 7, 7));
    }

    #[test]
    fn epoch_zero_sees_nothing_uncommitted() {
        assert!(!version_visible(1, TXN_INFINITY, TXN_EPOCH_ZERO));
    }
}
