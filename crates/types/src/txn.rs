//! Transaction / statement identifiers shared by the storage engine and
//! anything that pins a read snapshot against it.
//!
//! The relational store runs single-writer, multi-reader: every committed
//! statement gets the next [`TxnId`], and the database's *commit epoch* is
//! the id of the last committed statement. A reader pins an epoch `e` and
//! sees exactly the versions with `begin <= e < end` — so `TxnId` doubles
//! as the snapshot-epoch type.

/// Monotonically increasing statement/transaction identifier. Also used as
/// a snapshot epoch: "the state after statement `n` committed".
pub type TxnId = u64;

/// Epoch 0: the empty database, before any statement committed.
pub const TXN_EPOCH_ZERO: TxnId = 0;

/// Sentinel `end` marker of a live (not yet superseded) row version.
pub const TXN_INFINITY: TxnId = u64::MAX;

/// Visibility rule shared by scans and recovery checks: a version written
/// by `begin` and superseded at `end` is visible to a snapshot at `epoch`.
#[inline]
pub fn version_visible(begin: TxnId, end: TxnId, epoch: TxnId) -> bool {
    begin <= epoch && epoch < end
}

/// How a durable database acknowledges committed statements — the knob that
/// trades commit latency against `fdatasync` amortization (and, for
/// [`CommitMode::Async`], against a bounded durability-loss window).
///
/// * `Sync` — the committing thread appends and syncs its own statement
///   before the commit returns. One `fdatasync` per statement; the
///   strongest latency-to-durability coupling and the fastest single-writer
///   path (no thread hand-off).
/// * `Group` — commits are enqueued to a dedicated log-writer thread that
///   coalesces every waiter present at wakeup (up to `max_batch`, lingering
///   up to `max_wait_us` for stragglers) into **one** contiguous append +
///   **one** `fdatasync`, then releases all of them. Durability is as
///   strong as `Sync`; concurrent writers share the sync.
/// * `Async` — the commit is acknowledged as soon as it is queued; the
///   log-writer appends it promptly but only syncs on a cadence of
///   `flush_interval_us`. A crash can lose up to that window of *acked*
///   statements (never a torn or reordered one — the log is still written
///   in commit order, so recovery yields a commit-order prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// fsync-per-statement, acknowledged by the committing thread itself.
    Sync,
    /// Group commit through the log-writer thread: one sync per batch.
    Group {
        /// How long the log writer lingers for more commits once it has at
        /// least one, in microseconds. `0` = take only what is queued.
        max_wait_us: u64,
        /// Upper bound on statements coalesced into one sync.
        max_batch: usize,
    },
    /// Acknowledge after enqueue; a background flusher syncs every
    /// `flush_interval_us`. Bounded-loss window, see the enum docs.
    Async {
        /// Cadence of the background `fdatasync`, in microseconds.
        flush_interval_us: u64,
    },
}

impl Default for CommitMode {
    /// `Sync`: the PR-6 behaviour, and the right default for a
    /// single-writer embedded store.
    fn default() -> CommitMode {
        CommitMode::Sync
    }
}

impl CommitMode {
    /// Group commit with the default knobs: linger up to 200 µs, coalesce
    /// up to 128 statements per sync.
    pub fn group() -> CommitMode {
        CommitMode::Group {
            max_wait_us: 200,
            max_batch: 128,
        }
    }

    /// Async commit with the default 2 ms flush cadence.
    pub fn asynchronous() -> CommitMode {
        CommitMode::Async {
            flush_interval_us: 2_000,
        }
    }

    /// Whether commits are acknowledged by a log-writer thread (Group or
    /// Async) rather than inline by the committing thread.
    pub fn uses_log_writer(&self) -> bool {
        !matches!(self, CommitMode::Sync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_window() {
        // Written by txn 3, still live.
        assert!(!version_visible(3, TXN_INFINITY, 2));
        assert!(version_visible(3, TXN_INFINITY, 3));
        assert!(version_visible(3, TXN_INFINITY, 100));
        // Written by txn 3, superseded by txn 7.
        assert!(version_visible(3, 7, 6));
        assert!(!version_visible(3, 7, 7));
    }

    #[test]
    fn epoch_zero_sees_nothing_uncommitted() {
        assert!(!version_visible(1, TXN_INFINITY, TXN_EPOCH_ZERO));
    }

    #[test]
    fn commit_mode_defaults() {
        assert_eq!(CommitMode::default(), CommitMode::Sync);
        assert!(!CommitMode::Sync.uses_log_writer());
        assert!(CommitMode::group().uses_log_writer());
        assert!(CommitMode::asynchronous().uses_log_writer());
        let CommitMode::Group {
            max_wait_us,
            max_batch,
        } = CommitMode::group()
        else {
            panic!("group() must be Group");
        };
        assert!(max_wait_us > 0 && max_batch > 1);
    }
}
