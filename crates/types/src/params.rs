//! Call parameters for the unified `Request` API.
//!
//! Historically every call surface took its own shape of arguments:
//! deployed functions took positional `&[Value]` slices, the SQL surface
//! took named `&[(&str, Value)]` binding slices, and the serving front
//! cloned whatever it was handed. [`Params`] is the one bag both surfaces
//! draw from — positional arguments feed function calls, named bindings
//! feed SQL placeholders — with typed setters and `From` impls so call
//! sites stay as terse as the slices they replace.

use crate::value::Value;

/// Named + positional call parameters.
///
/// ```
/// use fedwf_types::{Params, Value};
///
/// let p = Params::new()
///     .arg(7)                  // positional, for function targets
///     .bind("Process", "p1");  // named, for SQL placeholders
/// assert_eq!(p.positional(), &[Value::Int(7)]);
/// assert_eq!(p.named_value("Process"), Some(&Value::Varchar("p1".into())));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    positional: Vec<Value>,
    named: Vec<(String, Value)>,
}

impl Params {
    /// An empty parameter bag.
    pub fn new() -> Params {
        Params::default()
    }

    /// Append a positional argument.
    pub fn arg(mut self, value: impl Into<Value>) -> Params {
        self.positional.push(value.into());
        self
    }

    /// Append (or replace) a named binding.
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<Value>) -> Params {
        let name = name.into();
        let value = value.into();
        match self.named.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.named.push((name, value)),
        }
        self
    }

    /// Positional arguments, in insertion order.
    pub fn positional(&self) -> &[Value] {
        &self.positional
    }

    /// Named bindings, in insertion order.
    pub fn named(&self) -> &[(String, Value)] {
        &self.named
    }

    /// Look up a named binding.
    pub fn named_value(&self, name: &str) -> Option<&Value> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The named bindings as the `(&str, Value)` pairs legacy SQL
    /// signatures expect.
    pub fn named_pairs(&self) -> Vec<(&str, Value)> {
        self.named
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect()
    }

    /// True when neither positional nor named parameters are present.
    pub fn is_empty(&self) -> bool {
        self.positional.is_empty() && self.named.is_empty()
    }

    /// Number of positional arguments.
    pub fn arity(&self) -> usize {
        self.positional.len()
    }
}

impl From<Vec<Value>> for Params {
    fn from(positional: Vec<Value>) -> Params {
        Params {
            positional,
            named: Vec::new(),
        }
    }
}

impl From<&[Value]> for Params {
    fn from(positional: &[Value]) -> Params {
        Params::from(positional.to_vec())
    }
}

impl<const N: usize> From<[Value; N]> for Params {
    fn from(positional: [Value; N]) -> Params {
        Params::from(positional.to_vec())
    }
}

impl From<&[(&str, Value)]> for Params {
    fn from(named: &[(&str, Value)]) -> Params {
        Params {
            positional: Vec::new(),
            named: named
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        }
    }
}

impl<const N: usize> From<[(&str, Value); N]> for Params {
    fn from(named: [(&str, Value); N]) -> Params {
        Params::from(named.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_both_kinds() {
        let p = Params::new().arg(1).arg("x").bind("k", 2.5).bind("b", true);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.positional()[1], Value::Varchar("x".into()));
        assert_eq!(p.named_value("k"), Some(&Value::Double(2.5)));
        assert_eq!(p.named_value("b"), Some(&Value::Boolean(true)));
        assert_eq!(p.named_value("missing"), None);
        assert!(!p.is_empty());
        assert!(Params::new().is_empty());
    }

    #[test]
    fn bind_replaces_existing_name() {
        let p = Params::new().bind("k", 1).bind("k", 2);
        assert_eq!(p.named().len(), 1);
        assert_eq!(p.named_value("k"), Some(&Value::Int(2)));
    }

    #[test]
    fn from_impls_cover_legacy_shapes() {
        let from_vec: Params = vec![Value::Int(1)].into();
        assert_eq!(from_vec.positional(), &[Value::Int(1)]);

        let slice: &[Value] = &[Value::Int(2)];
        let from_slice: Params = slice.into();
        assert_eq!(from_slice.arity(), 1);

        let from_named: Params = [("a", Value::Int(3))].into();
        assert_eq!(from_named.named_value("a"), Some(&Value::Int(3)));
        assert_eq!(from_named.named_pairs(), vec![("a", Value::Int(3))]);
    }
}
