//! A small deterministic pseudo-random number generator (xoshiro256**
//! seeded by SplitMix64) so the workspace needs no external `rand` crate.
//!
//! Same seed, same stream, byte for byte, on every platform — exactly the
//! property the deterministic data generator and the in-tree property-test
//! harness ([`crate::check`]) rely on.

/// Deterministic PRNG with convenience samplers.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// A generator fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut s = seed;
        Rng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    /// Uses Lemire's multiply-shift reduction with rejection for
    /// bias-free sampling.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires a non-zero bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.next_below(span as u64) as i64)
    }

    /// Uniform `i32` in the inclusive range `[lo, hi]`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform `usize` in the half-open range `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniformly chosen element of the slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// A random ASCII string drawn from `alphabet`, length in `[0, max_len]`.
    pub fn ascii_string(&mut self, alphabet: &[u8], max_len: usize) -> String {
        let len = self.range_usize(0, max_len + 1);
        (0..len).map(|_| *self.pick(alphabet) as char).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.range_i32(-5, 5);
            assert!((-5..=5).contains(&x));
            let y = r.range_usize(3, 9);
            assert!((3..9).contains(&y));
        }
        assert_eq!(r.range_i32(4, 4), 4);
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn pick_and_strings() {
        let mut r = Rng::seed_from_u64(3);
        let items = [1, 2, 3];
        assert!(items.contains(r.pick(&items)));
        let s = r.ascii_string(b"ab", 6);
        assert!(s.len() <= 6);
        assert!(s.chars().all(|c| c == 'a' || c == 'b'));
    }
}
