//! A miniature property-testing harness (the offline stand-in for
//! `proptest`): run a predicate over many deterministically seeded random
//! cases and report the failing seed so a run can be reproduced exactly.
//!
//! ```
//! use fedwf_types::check;
//!
//! check::cases(64, |rng| {
//!     let x = rng.range_i32(-1000, 1000);
//!     assert_eq!(x.wrapping_add(0), x);
//! });
//! ```

use crate::rng::Rng;

/// Base seed of every run — fixed so CI is deterministic. Case `i` uses
/// seed `BASE_SEED + i`, which the failure message reports.
pub const BASE_SEED: u64 = 0xFED_F00D;

/// Run `property` against `n` deterministic random cases. Panics (with the
/// reproducing seed) as soon as one case fails.
pub fn cases(n: u64, mut property: impl FnMut(&mut Rng)) {
    for i in 0..n {
        let seed = BASE_SEED + i;
        let mut rng = Rng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property failed on case {i} (seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        cases(16, |rng| {
            count += 1;
            let a = rng.range_i32(0, 100);
            assert!(a <= 100);
        });
        assert_eq!(count, 16);
    }

    #[test]
    #[should_panic(expected = "property failed on case")]
    fn failing_property_reports_seed() {
        cases(8, |rng| {
            assert!(rng.range_i32(0, 10) > 100, "impossible bound");
        });
    }
}
