//! Schemas, rows and in-memory result tables.

use std::fmt;
use std::sync::Arc;

use crate::error::{FedError, FedResult};
use crate::ident::Ident;
use crate::value::{DataType, Value};

/// A named, typed column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: Ident,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<Ident>, data_type: DataType) -> Column {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Column {
        self.nullable = false;
        self
    }
}

/// An ordered list of columns. Shared via `Arc` between plans and tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Build a schema of nullable columns from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema {
            columns: cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    pub fn empty() -> Schema {
        Schema { columns: vec![] }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column with the given (case-insensitive) name.
    pub fn index_of(&self, name: &Ident) -> Option<usize> {
        self.columns.iter().position(|c| &c.name == name)
    }

    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Concatenate two schemas (used for join / lateral outputs).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// The schema restricted to the given column indexes, in their given
    /// order (projection-pruned scan output).
    pub fn project(&self, indexes: &[usize]) -> Schema {
        Schema {
            columns: indexes.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Check that a row conforms to this schema: arity, types (after
    /// implicit widening is *not* applied — storage is strict), nullability.
    pub fn check_row(&self, row: &Row) -> FedResult<()> {
        if row.len() != self.len() {
            return Err(FedError::schema(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.len()
            )));
        }
        for (i, (v, c)) in row.values().iter().zip(self.columns.iter()).enumerate() {
            match v.data_type() {
                None => {
                    if !c.nullable {
                        return Err(FedError::schema(format!(
                            "column {} ({}) is NOT NULL but row has NULL at position {i}",
                            c.name, c.data_type
                        )));
                    }
                }
                Some(dt) => {
                    if dt != c.data_type {
                        return Err(FedError::schema(format!(
                            "column {} expects {} but row has {} at position {i}",
                            c.name, c.data_type, dt
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A shared schema handle.
pub type SchemaRef = Arc<Schema>;

/// A single row of values.
///
/// Values live behind an `Arc<[Value]>`, so cloning a row — handing it from
/// a stored table to a scan result, a hash-join build side, or a streaming
/// batch — is a refcount bump, not a deep copy. Rows are immutable once
/// built; mutation goes through [`Row::into_values`] and back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Default for Row {
    fn default() -> Row {
        Row::empty()
    }
}

impl Row {
    pub fn new(values: Vec<Value>) -> Row {
        Row {
            values: values.into(),
        }
    }

    pub fn empty() -> Row {
        Row {
            values: Arc::from([]),
        }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values.to_vec()
    }

    /// Approximate in-memory footprint of the row's values, for the
    /// executor's `bytes_materialized` accounting.
    pub fn approx_bytes(&self) -> usize {
        self.values.iter().map(Value::approx_bytes).sum()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row {
            values: values.into(),
        }
    }

    /// Project the row onto the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row {
            values: indexes.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Row {
        Row {
            values: values.into(),
        }
    }
}

/// An in-memory table: a schema plus materialized rows. This is the result
/// format handed from UDTFs to the FDBS ("the result ... is mapped to an
/// abstract table") and from the FDBS back to applications.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: SchemaRef,
    rows: Vec<Row>,
}

impl Table {
    pub fn new(schema: SchemaRef) -> Table {
        Table {
            schema,
            rows: vec![],
        }
    }

    pub fn with_rows(schema: SchemaRef, rows: Vec<Row>) -> FedResult<Table> {
        for r in &rows {
            schema.check_row(r)?;
        }
        Ok(Table { schema, rows })
    }

    /// Build a single-row, single-column table — the common shape of a local
    /// function result in the sample scenario.
    pub fn scalar(name: &str, value: Value) -> Table {
        let dt = value.data_type().unwrap_or(DataType::Varchar);
        let schema = Arc::new(Schema::of(&[(name, dt)]));
        Table {
            schema,
            rows: vec![Row::new(vec![value])],
        }
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after checking it against the schema.
    pub fn push(&mut self, row: Row) -> FedResult<()> {
        self.schema.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Append a row without the schema check (hot path inside executors that
    /// construct type-correct rows by construction).
    pub fn push_unchecked(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Value at (row, column-name), convenience for tests and examples.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.schema.index_of(&Ident::new(column))?;
        self.rows.get(row)?.get(idx)
    }

    /// Render an ASCII table, the way the `report` binary prints results.
    pub fn render(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:width$} |", c, width = widths[i]));
            }
            s
        };
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&line(&headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &rendered {
            out.push_str(&line(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> SchemaRef {
        Arc::new(Schema::of(&[
            ("SupplierNo", DataType::Int),
            ("Name", DataType::Varchar),
        ]))
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let s = sample_schema();
        assert_eq!(s.index_of(&Ident::new("supplierno")), Some(0));
        assert_eq!(s.index_of(&Ident::new("NAME")), Some(1));
        assert_eq!(s.index_of(&Ident::new("missing")), None);
    }

    #[test]
    fn check_row_enforces_arity_and_types() {
        let s = sample_schema();
        assert!(s
            .check_row(&Row::new(vec![Value::Int(1), Value::str("a")]))
            .is_ok());
        assert!(s.check_row(&Row::new(vec![Value::Int(1)])).is_err());
        assert!(s
            .check_row(&Row::new(vec![Value::str("x"), Value::str("a")]))
            .is_err());
    }

    #[test]
    fn check_row_enforces_not_null() {
        let s = Arc::new(Schema::new(vec![
            Column::new("id", DataType::Int).not_null()
        ]));
        assert!(s.check_row(&Row::new(vec![Value::Null])).is_err());
        assert!(s.check_row(&Row::new(vec![Value::Int(0)])).is_ok());
    }

    #[test]
    fn table_push_checks_schema() {
        let mut t = Table::new(sample_schema());
        assert!(t
            .push(Row::new(vec![Value::Int(1), Value::str("a")]))
            .is_ok());
        assert!(t
            .push(Row::new(vec![Value::str("x"), Value::str("a")]))
            .is_err());
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn scalar_table_shape() {
        let t = Table::scalar("Qual", Value::Int(93));
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.schema().len(), 1);
        assert_eq!(t.value(0, "Qual"), Some(&Value::Int(93)));
    }

    #[test]
    fn row_project_and_concat() {
        let r = Row::new(vec![Value::Int(1), Value::str("a"), Value::Boolean(true)]);
        assert_eq!(
            r.project(&[2, 0]),
            Row::new(vec![Value::Boolean(true), Value::Int(1)])
        );
        let joined = r.concat(&Row::new(vec![Value::Null]));
        assert_eq!(joined.len(), 4);
    }

    #[test]
    fn schema_concat_preserves_order() {
        let a = Schema::of(&[("x", DataType::Int)]);
        let b = Schema::of(&[("y", DataType::Varchar)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.index_of(&Ident::new("y")), Some(1));
    }

    #[test]
    fn render_produces_ascii_grid() {
        let t = Table::scalar("Answer", Value::str("yes"));
        let s = t.render();
        assert!(s.contains("Answer"));
        assert!(s.contains("yes"));
        assert!(s.starts_with('+'));
    }
}
