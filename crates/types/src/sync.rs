//! Thin synchronization wrappers over `std::sync` with a `parking_lot`-style
//! API: `lock()` / `read()` / `write()` return guards directly instead of a
//! `Result`, treating poisoning as recoverable (the protected data is taken
//! as-is). The workspace builds offline with no external crates; these
//! wrappers keep call sites as terse as the `parking_lot` originals.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return a `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable paired with [`Mutex`]: the guards our wrapper
/// returns are plain `std::sync` guards, so waiting works directly; like
/// the lock wrappers, poisoning is treated as recoverable.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Atomically release the guard and block until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// [`Condvar::wait`] with a timeout; returns the guard and whether the
    /// wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|poison| poison.into_inner());
        (guard, result.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let other = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*other;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (lock, cv) = &*shared;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
        // A timed wait on a never-notified condvar reports the timeout.
        let (lock, cv) = &*shared;
        let (_guard, timed_out) = cv.wait_timeout(lock.lock(), Duration::from_millis(1));
        assert!(timed_out);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
