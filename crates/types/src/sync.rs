//! Thin synchronization wrappers over `std::sync` with a `parking_lot`-style
//! API: `lock()` / `read()` / `write()` return guards directly instead of a
//! `Result`, treating poisoning as recoverable (the protected data is taken
//! as-is). The workspace builds offline with no external crates; these
//! wrappers keep call sites as terse as the `parking_lot` originals.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return a `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
