//! The dynamically typed SQL value model.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// SQL data types supported across the federation.
///
/// The set matches what the paper's examples exercise: the application
/// systems hand back `INT` stock numbers, `VARCHAR` component names and
/// decisions, and the *simple case* of Section 3 converts `INT` to `BIGINT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer (`INT`).
    Int,
    /// 64-bit signed integer (`BIGINT`).
    BigInt,
    /// 64-bit IEEE float (`DOUBLE`).
    Double,
    /// Variable length character string (`VARCHAR`).
    Varchar,
    /// Boolean (`BOOLEAN`).
    Boolean,
}

impl DataType {
    /// SQL spelling of the type, as it appears in `CREATE FUNCTION`/`CREATE
    /// TABLE` statements.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::BigInt => "BIGINT",
            DataType::Double => "DOUBLE",
            DataType::Varchar => "VARCHAR",
            DataType::Boolean => "BOOLEAN",
        }
    }

    /// Parse a SQL type name (case-insensitive). Accepts common synonyms.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" => Some(DataType::Int),
            "BIGINT" | "LONG" => Some(DataType::BigInt),
            "DOUBLE" | "FLOAT" | "REAL" => Some(DataType::Double),
            "VARCHAR" | "CHAR" | "STRING" | "TEXT" => Some(DataType::Varchar),
            "BOOLEAN" | "BOOL" => Some(DataType::Boolean),
            _ => None,
        }
    }

    /// Whether the type is numeric (participates in arithmetic and in the
    /// numeric widening lattice `INT < BIGINT < DOUBLE`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::BigInt | DataType::Double)
    }

    /// Position in the numeric widening lattice; `None` for non-numerics.
    pub fn numeric_rank(&self) -> Option<u8> {
        match self {
            DataType::Int => Some(0),
            DataType::BigInt => Some(1),
            DataType::Double => Some(2),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single SQL value. `Null` is typeless, as in SQL.
///
/// String payloads are `Arc<str>`, so cloning a value — and therefore
/// sharing a row between a stored table, a hash-join build side, and a
/// result set — bumps a refcount instead of copying bytes. The same shared
/// payload backs [`ValueKey::Str`], so hashing a string column for a
/// join/DISTINCT/GROUP BY key allocates nothing per row.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i32),
    BigInt(i64),
    Double(f64),
    Varchar(Arc<str>),
    Boolean(bool),
}

impl Value {
    /// The concrete type of the value, `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::BigInt(_) => Some(DataType::BigInt),
            Value::Double(_) => Some(DataType::Double),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Boolean(_) => Some(DataType::Boolean),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Varchar(s.into())
    }

    /// Approximate in-memory footprint, used by the executor's
    /// `bytes_materialized` accounting: the enum slot plus the length of
    /// any string payload (counted once per logical row that buffers it,
    /// even though the bytes themselves are shared).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Varchar(s) => s.len(),
                _ => 0,
            }
    }

    /// Numeric view as f64, if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::BigInt(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view as i64, if the value is an integer type.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::BigInt(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(&**s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL three-valued-logic equality: `Null = anything` is unknown
    /// (`None`); numeric comparison is performed across numeric types.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL comparison with numeric widening; `None` if either side is null
    /// or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Varchar(a), Varchar(b)) => Some(a.cmp(b)),
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total ordering used by index structures: NULL sorts first, then
    /// booleans, then numerics, then strings. Unlike [`Value::sql_cmp`]
    /// this never fails, which is what a B-tree needs.
    pub fn index_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Boolean(_) => 1,
                Value::Int(_) | Value::BigInt(_) | Value::Double(_) => 2,
                Value::Varchar(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
            (Value::Varchar(a), Value::Varchar(b)) => a.cmp(b),
            (a, b) if class(a) == 2 && class(b) == 2 => {
                // Compare integers exactly when possible; fall back to f64.
                // NaN sorts after every other numeric so the order stays
                // total (a tie would violate antisymmetry vs. real numbers).
                match (a.as_i64(), b.as_i64()) {
                    (Some(x), Some(y)) => x.cmp(&y),
                    _ => {
                        let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                        match (x.is_nan(), y.is_nan()) {
                            (true, true) => Ordering::Equal,
                            (true, false) => Ordering::Greater,
                            (false, true) => Ordering::Less,
                            (false, false) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                        }
                    }
                }
            }
            (a, b) => class(a).cmp(&class(b)),
        }
    }

    /// Hashable grouping key, equality-consistent with [`Value::index_cmp`]:
    /// two values compare `Equal` under `index_cmp` iff their group keys are
    /// equal. NULLs group together, `Int(1)`/`BigInt(1)`/`Double(1.0)` land
    /// in one group, and NaN groups with NaN (matching the totalized
    /// `index_cmp`).
    ///
    /// Caveat: `index_cmp` itself is lossy (hence non-transitive) for
    /// integers beyond 2^53 compared against `Double`s; the key uses exact
    /// integer identity there, which is the self-consistent reading.
    pub fn group_key(&self) -> ValueKey {
        match self {
            Value::Null => ValueKey::Null,
            Value::Boolean(b) => ValueKey::Bool(*b),
            Value::Int(v) => ValueKey::Int(*v as i64),
            Value::BigInt(v) => ValueKey::Int(*v),
            Value::Double(d) => {
                if d.is_nan() {
                    ValueKey::NaN
                } else if d.fract() == 0.0
                    && *d >= -9_223_372_036_854_775_808.0
                    && *d < 9_223_372_036_854_775_808.0
                {
                    // Integral doubles in i64 range compare Equal to the
                    // matching integer under index_cmp, so share its key.
                    ValueKey::Int(*d as i64)
                } else {
                    ValueKey::Float(canonical_f64_bits(*d))
                }
            }
            Value::Varchar(s) => ValueKey::Str(s.clone()),
        }
    }

    /// Hashable equi-join key, equality-consistent with [`Value::sql_eq`]:
    /// `a.sql_eq(b) == Some(true)` iff both keys are `Some` and equal.
    /// `None` for NULL (which joins nothing under 3VL). NaN maps to
    /// `Some(ValueKey::NaN)` — callers that need `sql_cmp`'s "incomparable"
    /// error semantics for NaN must check `is_nan` themselves.
    ///
    /// All numerics collapse to canonical f64 bits because `sql_cmp`
    /// compares numerics as f64 (so `BigInt(1) = Double(1.0)` joins).
    pub fn join_key(&self) -> Option<ValueKey> {
        match self {
            Value::Null => None,
            Value::Boolean(b) => Some(ValueKey::Bool(*b)),
            Value::Int(v) => Some(ValueKey::Float(canonical_f64_bits(*v as f64))),
            Value::BigInt(v) => Some(ValueKey::Float(canonical_f64_bits(*v as f64))),
            Value::Double(d) => {
                if d.is_nan() {
                    Some(ValueKey::NaN)
                } else {
                    Some(ValueKey::Float(canonical_f64_bits(*d)))
                }
            }
            Value::Varchar(s) => Some(ValueKey::Str(s.clone())),
        }
    }

    /// Render the value the way a result-table printer would.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(v) => v.to_string(),
            Value::BigInt(v) => v.to_string(),
            Value::Double(v) => format!("{v}"),
            Value::Varchar(s) => s.to_string(),
            Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

/// `-0.0` and `+0.0` compare equal everywhere, so they must share bits.
fn canonical_f64_bits(d: f64) -> u64 {
    if d == 0.0 {
        0.0f64.to_bits()
    } else {
        d.to_bits()
    }
}

/// A hashable stand-in for a [`Value`], produced by [`Value::group_key`]
/// (index_cmp-consistent) or [`Value::join_key`] (sql_eq-consistent).
/// Used as the key type of grouping, DISTINCT, and hash-join tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueKey {
    Null,
    Bool(bool),
    /// Exact integer identity (group keys for INT/BIGINT and integral
    /// DOUBLEs).
    Int(i64),
    /// Canonicalized f64 bits (join keys for all numerics; group keys for
    /// non-integral DOUBLEs).
    Float(u64),
    /// NaN, kept apart from every `Float` so hashing stays consistent with
    /// comparison.
    NaN,
    /// Shares the value's `Arc<str>` payload — building a key from a string
    /// column bumps a refcount instead of copying the bytes.
    Str(Arc<str>),
}

impl PartialEq for Value {
    /// Structural equality (used by tests and containers), *not* SQL
    /// equality: `Null == Null` here, and `Int(1) != BigInt(1)`.
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (BigInt(a), BigInt(b)) => a == b,
            (Double(a), Double(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Varchar(a), Varchar(b)) => a == b,
            (Boolean(a), Boolean(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::BigInt(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.into())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v.into())
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_parse_round_trip() {
        for dt in [
            DataType::Int,
            DataType::BigInt,
            DataType::Double,
            DataType::Varchar,
            DataType::Boolean,
        ] {
            assert_eq!(DataType::parse(dt.sql_name()), Some(dt));
        }
        assert_eq!(DataType::parse("integer"), Some(DataType::Int));
        assert_eq!(DataType::parse("LONG"), Some(DataType::BigInt));
        assert_eq!(DataType::parse("no-such-type"), None);
    }

    #[test]
    fn numeric_rank_orders_widening_lattice() {
        assert!(DataType::Int.numeric_rank() < DataType::BigInt.numeric_rank());
        assert!(DataType::BigInt.numeric_rank() < DataType::Double.numeric_rank());
        assert_eq!(DataType::Varchar.numeric_rank(), None);
    }

    #[test]
    fn sql_eq_crosses_numeric_types() {
        assert_eq!(Value::Int(7).sql_eq(&Value::BigInt(7)), Some(true));
        assert_eq!(Value::Int(7).sql_eq(&Value::Double(7.0)), Some(true));
        assert_eq!(Value::Int(7).sql_eq(&Value::Int(8)), Some(false));
    }

    #[test]
    fn sql_eq_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("1")), None);
        assert_eq!(Value::Boolean(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn index_cmp_is_total_and_null_first() {
        assert_eq!(Value::Null.index_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(2).index_cmp(&Value::BigInt(2)), Ordering::Equal);
        assert_eq!(
            Value::str("a").index_cmp(&Value::Int(999)),
            Ordering::Greater
        );
    }

    #[test]
    fn structural_eq_distinguishes_types() {
        assert_ne!(Value::Int(1), Value::BigInt(1));
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
    }

    #[test]
    fn index_cmp_nan_sorts_last_among_numerics() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.index_cmp(&Value::Double(1e300)), Ordering::Greater);
        assert_eq!(Value::Double(1e300).index_cmp(&nan), Ordering::Less);
        assert_eq!(nan.index_cmp(&nan), Ordering::Equal);
        // Still below strings: the class ladder wins over the NaN rule.
        assert_eq!(nan.index_cmp(&Value::str("a")), Ordering::Less);
    }

    #[test]
    fn group_key_matches_index_cmp_equality() {
        let samples = [
            Value::Null,
            Value::Boolean(true),
            Value::Int(1),
            Value::BigInt(1),
            Value::Double(1.0),
            Value::Double(0.0),
            Value::Double(-0.0),
            Value::Double(1.5),
            Value::Double(f64::NAN),
            Value::str("1"),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    a.group_key() == b.group_key(),
                    a.index_cmp(b) == Ordering::Equal,
                    "group_key/index_cmp disagree on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn join_key_matches_sql_eq() {
        let samples = [
            Value::Boolean(false),
            Value::Int(7),
            Value::BigInt(7),
            Value::Double(7.0),
            Value::Double(-0.0),
            Value::Double(0.0),
            Value::Double(2.5),
            Value::str("7"),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    a.join_key() == b.join_key(),
                    a.sql_eq(b) == Some(true),
                    "join_key/sql_eq disagree on {a:?} vs {b:?}"
                );
            }
        }
        assert_eq!(Value::Null.join_key(), None);
        assert_eq!(
            Value::Double(f64::NAN).join_key(),
            Some(ValueKey::NaN),
            "NaN key must exist so exec can detect and reject it"
        );
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::str("x").render(), "x");
        assert_eq!(Value::Boolean(false).render(), "FALSE");
    }
}
