//! The workspace-wide error type.
//!
//! Every layer of the integration server (storage, SQL, workflow engine,
//! application systems, wrapper) produces a [`FedError`] so that a user
//! query failing deep inside a local function surfaces with its provenance
//! intact.

use std::fmt;

use crate::cast::CastError;

/// Result alias used across the workspace.
pub type FedResult<T> = Result<T, FedError>;

/// The layer an error originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorLayer {
    /// Relational storage engine.
    Storage,
    /// SQL lexer/parser.
    Parse,
    /// Name resolution / typing.
    Bind,
    /// Plan construction or optimization.
    Plan,
    /// Runtime execution.
    Execution,
    /// Schema/constraint violations.
    Schema,
    /// Catalog lookups and DDL.
    Catalog,
    /// Workflow buildtime or runtime.
    Workflow,
    /// An application system / local function.
    AppSystem,
    /// SQL/MED wrapper or controller.
    Wrapper,
    /// Feature outside an architecture's mapping capability
    /// (e.g. a cyclic dependency handed to the UDTF architecture).
    Unsupported,
    /// The serving layer shed the request (admission queue full or the
    /// front is shutting down). The request was *not* executed.
    Overload,
    /// A per-call deadline expired before a result was produced.
    Timeout,
    /// Crash recovery: a write-ahead-log or checkpoint file could not be
    /// read, decoded, or replayed (beyond the tolerated torn tail).
    Recovery,
    /// A commit was rejected because the log-writer (group-commit queue)
    /// has shut down or died on a sink failure; the statement was *not*
    /// made durable.
    Shutdown,
    /// A transport failure between a network client and the server:
    /// connect/read/write errors, a connection the server closed mid-call.
    /// Whether the request executed is *unknown* — retry only idempotent
    /// work.
    Network,
    /// A wire-protocol violation: bad frame checksum, unknown frame kind or
    /// tag, version mismatch, trailing bytes. One side is speaking a
    /// different dialect; retrying will not help.
    Protocol,
}

impl ErrorLayer {
    /// Every layer, in stable wire-code order.
    pub const ALL: [ErrorLayer; 17] = [
        ErrorLayer::Storage,
        ErrorLayer::Parse,
        ErrorLayer::Bind,
        ErrorLayer::Plan,
        ErrorLayer::Execution,
        ErrorLayer::Schema,
        ErrorLayer::Catalog,
        ErrorLayer::Workflow,
        ErrorLayer::AppSystem,
        ErrorLayer::Wrapper,
        ErrorLayer::Unsupported,
        ErrorLayer::Overload,
        ErrorLayer::Timeout,
        ErrorLayer::Recovery,
        ErrorLayer::Shutdown,
        ErrorLayer::Network,
        ErrorLayer::Protocol,
    ];

    /// The stable numeric code of this layer. These codes travel across
    /// the wire protocol and must never be renumbered — append new layers
    /// with fresh codes instead. Asserted by the golden-code test below.
    pub fn code(&self) -> u16 {
        match self {
            ErrorLayer::Storage => 1,
            ErrorLayer::Parse => 2,
            ErrorLayer::Bind => 3,
            ErrorLayer::Plan => 4,
            ErrorLayer::Execution => 5,
            ErrorLayer::Schema => 6,
            ErrorLayer::Catalog => 7,
            ErrorLayer::Workflow => 8,
            ErrorLayer::AppSystem => 9,
            ErrorLayer::Wrapper => 10,
            ErrorLayer::Unsupported => 11,
            ErrorLayer::Overload => 12,
            ErrorLayer::Timeout => 13,
            ErrorLayer::Recovery => 14,
            ErrorLayer::Shutdown => 15,
            ErrorLayer::Network => 16,
            ErrorLayer::Protocol => 17,
        }
    }

    /// Inverse of [`ErrorLayer::code`]; `None` for an unassigned code
    /// (e.g. a frame from a newer peer speaking a superset).
    pub fn from_code(code: u16) -> Option<ErrorLayer> {
        ErrorLayer::ALL.into_iter().find(|l| l.code() == code)
    }
}

impl fmt::Display for ErrorLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorLayer::Storage => "storage",
            ErrorLayer::Parse => "parse",
            ErrorLayer::Bind => "bind",
            ErrorLayer::Plan => "plan",
            ErrorLayer::Execution => "execution",
            ErrorLayer::Schema => "schema",
            ErrorLayer::Catalog => "catalog",
            ErrorLayer::Workflow => "workflow",
            ErrorLayer::AppSystem => "application-system",
            ErrorLayer::Wrapper => "wrapper",
            ErrorLayer::Unsupported => "unsupported",
            ErrorLayer::Overload => "overload",
            ErrorLayer::Timeout => "timeout",
            ErrorLayer::Recovery => "recovery",
            ErrorLayer::Shutdown => "shutdown",
            ErrorLayer::Network => "network",
            ErrorLayer::Protocol => "protocol",
        };
        f.write_str(s)
    }
}

/// Workspace-wide error: a layer tag, a message, and an optional chain of
/// context frames added as the error travels up through components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FedError {
    pub layer: ErrorLayer,
    pub message: String,
    pub context: Vec<String>,
}

impl FedError {
    pub fn new(layer: ErrorLayer, message: impl Into<String>) -> FedError {
        FedError {
            layer,
            message: message.into(),
            context: vec![],
        }
    }

    pub fn storage(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Storage, msg)
    }
    pub fn parse(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Parse, msg)
    }
    pub fn bind(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Bind, msg)
    }
    pub fn plan(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Plan, msg)
    }
    pub fn execution(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Execution, msg)
    }
    pub fn schema(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Schema, msg)
    }
    pub fn catalog(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Catalog, msg)
    }
    pub fn workflow(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Workflow, msg)
    }
    pub fn app_system(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::AppSystem, msg)
    }
    pub fn wrapper(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Wrapper, msg)
    }
    pub fn unsupported(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Unsupported, msg)
    }
    pub fn overloaded(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Overload, msg)
    }
    pub fn timeout(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Timeout, msg)
    }
    pub fn recovery(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Recovery, msg)
    }
    pub fn shutdown(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Shutdown, msg)
    }
    pub fn network(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Network, msg)
    }
    pub fn protocol(msg: impl Into<String>) -> FedError {
        FedError::new(ErrorLayer::Protocol, msg)
    }

    /// The stable numeric code of this error's layer; see
    /// [`ErrorLayer::code`]. This is what identifies an error across the
    /// wire protocol — clients match on codes, never on message strings.
    pub fn code(&self) -> u16 {
        self.layer.code()
    }

    /// Attach a context frame, e.g. "while executing activity GetQuality".
    pub fn with_context(mut self, frame: impl Into<String>) -> FedError {
        self.context.push(frame.into());
        self
    }

    /// True when the error marks a capability gap rather than a failure —
    /// the paper's Section 3 table records exactly these.
    pub fn is_unsupported(&self) -> bool {
        self.layer == ErrorLayer::Unsupported
    }

    /// True when the serving layer shed this request without executing it
    /// (safe to retry against a less loaded server).
    pub fn is_overloaded(&self) -> bool {
        self.layer == ErrorLayer::Overload
    }

    /// True when a per-call deadline expired.
    pub fn is_timeout(&self) -> bool {
        self.layer == ErrorLayer::Timeout
    }

    /// True when a commit was rejected by a shut-down (or dead) log-writer
    /// queue; the statement is guaranteed *not* durable.
    pub fn is_shutdown(&self) -> bool {
        self.layer == ErrorLayer::Shutdown
    }

    /// True for a transport failure ([`ErrorLayer::Network`]): whether the
    /// request executed is unknown.
    pub fn is_network(&self) -> bool {
        self.layer == ErrorLayer::Network
    }

    /// True for a wire-protocol violation ([`ErrorLayer::Protocol`]).
    pub fn is_protocol(&self) -> bool {
        self.layer == ErrorLayer::Protocol
    }
}

impl fmt::Display for FedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.layer, self.message)?;
        for frame in &self.context {
            write!(f, "\n  while {frame}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FedError {}

impl From<CastError> for FedError {
    fn from(e: CastError) -> FedError {
        FedError::execution(e.to_string())
    }
}

/// Extension for adding context to a `FedResult` chain.
pub trait ResultExt<T> {
    fn context(self, frame: impl Into<String>) -> FedResult<T>;
}

impl<T> ResultExt<T> for FedResult<T> {
    fn context(self, frame: impl Into<String>) -> FedResult<T> {
        self.map_err(|e| e.with_context(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    #[test]
    fn display_includes_layer_and_context() {
        let e = FedError::workflow("activity failed")
            .with_context("executing activity GetQuality")
            .with_context("running process BuySuppComp");
        let s = e.to_string();
        assert!(s.contains("[workflow] activity failed"));
        assert!(s.contains("while executing activity GetQuality"));
        assert!(s.contains("while running process BuySuppComp"));
    }

    #[test]
    fn cast_error_converts() {
        let ce = crate::cast::cast_value(&Value::str("abc"), DataType::Int).unwrap_err();
        let fe: FedError = ce.into();
        assert_eq!(fe.layer, ErrorLayer::Execution);
    }

    #[test]
    fn unsupported_marker() {
        assert!(FedError::unsupported("cyclic dependency").is_unsupported());
        assert!(!FedError::parse("x").is_unsupported());
    }

    /// Golden test: the wire codes are a stable contract. A client built
    /// against today's binary must decode errors from any future server,
    /// so these numbers may only ever be *extended*, never changed. If
    /// this test fails you renumbered a layer — don't.
    #[test]
    fn error_codes_are_stable() {
        let golden: [(ErrorLayer, u16); 17] = [
            (ErrorLayer::Storage, 1),
            (ErrorLayer::Parse, 2),
            (ErrorLayer::Bind, 3),
            (ErrorLayer::Plan, 4),
            (ErrorLayer::Execution, 5),
            (ErrorLayer::Schema, 6),
            (ErrorLayer::Catalog, 7),
            (ErrorLayer::Workflow, 8),
            (ErrorLayer::AppSystem, 9),
            (ErrorLayer::Wrapper, 10),
            (ErrorLayer::Unsupported, 11),
            (ErrorLayer::Overload, 12),
            (ErrorLayer::Timeout, 13),
            (ErrorLayer::Recovery, 14),
            (ErrorLayer::Shutdown, 15),
            (ErrorLayer::Network, 16),
            (ErrorLayer::Protocol, 17),
        ];
        assert_eq!(golden.len(), ErrorLayer::ALL.len(), "cover every layer");
        for (layer, code) in golden {
            assert_eq!(layer.code(), code, "{layer} was renumbered");
            assert_eq!(ErrorLayer::from_code(code), Some(layer));
        }
        assert_eq!(ErrorLayer::from_code(0), None);
        assert_eq!(ErrorLayer::from_code(999), None);
        assert_eq!(FedError::overloaded("x").code(), 12);
        assert_eq!(FedError::timeout("x").code(), 13);
    }

    #[test]
    fn result_ext_adds_context() {
        let r: FedResult<()> = Err(FedError::storage("io"));
        let r = r.context("scanning table Suppliers");
        assert_eq!(r.unwrap_err().context, vec!["scanning table Suppliers"]);
    }
}
