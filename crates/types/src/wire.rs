//! The byte-level wire codec shared by the network protocol and the WAL.
//!
//! Everything that crosses a process boundary — WAL frames on disk,
//! `Request`/`Outcome` frames on a socket — is encoded with the same
//! little-endian primitives: length-prefixed strings, tagged [`Value`]s,
//! schemas as column lists, tables as schema + row block. The reader is
//! bounds-checked and never panics on malformed input; every decode error
//! is a typed [`FedError::protocol`] so a garbage frame surfaces as a
//! protocol violation instead of a crash.
//!
//! The CRC-32 (IEEE 802.3 polynomial, as used by zip/png) lives here too:
//! it guards both the WAL's on-disk frames and the network protocol's
//! on-wire frames with the same checksum discipline.

use std::sync::{Arc, OnceLock};

use crate::error::{FedError, FedResult};
use crate::row::{Column, Row, Schema, Table};
use crate::value::{DataType, Value};

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial) — table-driven, no external crates.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 checksum of `bytes` (IEEE polynomial, as used by zip/png).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append-only encoder over a byte buffer. All integers are little-endian;
/// strings and byte blocks are `u32` length-prefixed.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    pub fn with_capacity(capacity: usize) -> WireWriter {
        WireWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `Some(s)` as a present marker + string, `None` as an absent marker.
    pub fn put_opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
            None => self.put_u8(0),
        }
    }

    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::BigInt(i) => {
                self.put_u8(2);
                self.buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                self.put_u8(3);
                self.buf.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Varchar(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
            Value::Boolean(b) => {
                self.put_u8(5);
                self.put_u8(*b as u8);
            }
        }
    }

    pub fn put_schema(&mut self, schema: &Schema) {
        self.put_u32(schema.len() as u32);
        for c in schema.columns() {
            self.put_str(c.name.as_str());
            self.put_u8(data_type_tag(c.data_type));
            self.put_bool(c.nullable);
        }
    }

    /// Schema followed by a `u32` row count and the row values in order.
    pub fn put_table(&mut self, table: &Table) {
        self.put_schema(table.schema());
        self.put_u32(table.row_count() as u32);
        for row in table.rows() {
            for v in row.values() {
                self.put_value(v);
            }
        }
    }
}

/// Stable on-wire tag of a [`DataType`]. Matches the WAL's historical
/// encoding, so the tags must never be renumbered.
pub fn data_type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::BigInt => 1,
        DataType::Double => 2,
        DataType::Varchar => 3,
        DataType::Boolean => 4,
    }
}

/// Inverse of [`data_type_tag`].
pub fn data_type_from_tag(tag: u8) -> FedResult<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::BigInt,
        2 => DataType::Double,
        3 => DataType::Varchar,
        4 => DataType::Boolean,
        other => return Err(FedError::protocol(format!("unknown data-type tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over a byte slice. Every read
/// fails with [`FedError::protocol`] instead of panicking when the slice
/// is shorter than the encoding claims.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(bytes: &'a [u8]) -> WireReader<'a> {
        WireReader { bytes, pos: 0 }
    }

    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> FedResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(FedError::protocol(format!(
                "truncated frame: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> FedResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> FedResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(FedError::protocol(format!("invalid bool byte {other}"))),
        }
    }

    pub fn get_u16(&mut self) -> FedResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> FedResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> FedResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> FedResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_str(&mut self) -> FedResult<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| FedError::protocol(format!("invalid utf-8 in string: {e}")))
    }

    pub fn get_opt_str(&mut self) -> FedResult<Option<String>> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_str()?)),
            other => Err(FedError::protocol(format!(
                "invalid option marker {other} for string"
            ))),
        }
    }

    pub fn get_value(&mut self) -> FedResult<Value> {
        Ok(match self.get_u8()? {
            0 => Value::Null,
            1 => Value::Int(i32::from_le_bytes(self.take(4)?.try_into().unwrap())),
            2 => Value::BigInt(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            3 => Value::Double(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            4 => Value::Varchar(Arc::from(self.get_str()?)),
            5 => Value::Boolean(self.get_bool()?),
            other => return Err(FedError::protocol(format!("unknown value tag {other}"))),
        })
    }

    pub fn get_schema(&mut self) -> FedResult<Schema> {
        let n = self.get_u32()? as usize;
        let mut columns = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = self.get_str()?;
            let data_type = data_type_from_tag(self.get_u8()?)?;
            let nullable = self.get_bool()?;
            let mut column = Column::new(name, data_type);
            column.nullable = nullable;
            columns.push(column);
        }
        Ok(Schema::new(columns))
    }

    pub fn get_table(&mut self) -> FedResult<Table> {
        let schema = Arc::new(self.get_schema()?);
        let arity = schema.len();
        let rows = self.get_u32()? as usize;
        let mut table = Table::new(schema);
        for _ in 0..rows {
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(self.get_value()?);
            }
            // The sender's table already passed its own schema check;
            // re-checking here would reject NULLs a nullable column allows
            // but a NOT NULL one doesn't after a lossy round-trip — and the
            // wire carries nullability, so the check holds by construction.
            table.push_unchecked(Row::new(values));
        }
        Ok(table)
    }

    /// Fail unless every byte of the frame was consumed — trailing garbage
    /// means the two sides disagree about the encoding.
    pub fn expect_exhausted(&self) -> FedResult<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(FedError::protocol(format!(
                "{} trailing bytes after decoded frame",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 is the canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(0xBEEF);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_str("hello");
        w.put_opt_str(None);
        w.put_opt_str(Some("x"));
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 123_456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_opt_str().unwrap(), None);
        assert_eq!(r.get_opt_str().unwrap(), Some("x".to_string()));
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn values_round_trip() {
        let values = [
            Value::Null,
            Value::Int(-7),
            Value::BigInt(1 << 40),
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::str(""),
            Value::str("übergröße"),
            Value::Boolean(false),
        ];
        let mut w = WireWriter::new();
        for v in &values {
            w.put_value(v);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for v in &values {
            let got = r.get_value().unwrap();
            match (v, &got) {
                // NaN != NaN under PartialEq; compare bit patterns instead.
                (Value::Double(a), Value::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => assert_eq!(&got, v),
            }
        }
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn table_round_trips_schema_and_rows() {
        let schema = Arc::new(Schema::new(vec![
            Column::new("Id", DataType::Int).not_null(),
            Column::new("Name", DataType::Varchar),
        ]));
        let table = Table::with_rows(
            Arc::clone(&schema),
            vec![
                Row::new(vec![Value::Int(1), Value::str("a")]),
                Row::new(vec![Value::Int(2), Value::Null]),
            ],
        )
        .unwrap();
        let mut w = WireWriter::new();
        w.put_table(&table);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let got = r.get_table().unwrap();
        assert_eq!(got, table);
        assert!(!got.schema().columns()[0].nullable);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_protocol_errors() {
        let mut w = WireWriter::new();
        w.put_str("truncate me");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..bytes.len() - 3]);
        let err = r.get_str().unwrap_err();
        assert_eq!(err.layer, crate::ErrorLayer::Protocol);
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut r = WireReader::new(&[9]);
        assert!(r.get_value().is_err());
        assert!(data_type_from_tag(200).is_err());
    }
}
