//! Cast rules between SQL types.
//!
//! Section 3's *simple case* resolves signature mismatches between federated
//! and local functions with cast functions (`BIGINT(GN.Number)`) on the UDTF
//! side and *helper activities* on the WfMS side. Both paths funnel through
//! [`cast_value`], so the two architectures are guaranteed to agree on
//! conversion semantics.

use std::fmt;

use crate::value::{DataType, Value};

/// Error produced by a failed cast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastError {
    pub from: Option<DataType>,
    pub to: DataType,
    pub detail: String,
}

impl fmt::Display for CastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(from) => write!(f, "cannot cast {} to {}: {}", from, self.to, self.detail),
            None => write!(
                f,
                "cannot cast NULL-typed value to {}: {}",
                self.to, self.detail
            ),
        }
    }
}

impl std::error::Error for CastError {}

fn err(v: &Value, to: DataType, detail: impl Into<String>) -> CastError {
    CastError {
        from: v.data_type(),
        to,
        detail: detail.into(),
    }
}

/// Explicit cast, `CAST(v AS to)` / `BIGINT(v)` semantics.
///
/// * `NULL` casts to `NULL` of any type.
/// * Numeric widening is always exact; narrowing fails on overflow and
///   `DOUBLE -> INT/BIGINT` truncates toward zero (DB2 behaviour).
/// * Strings parse to numerics/booleans when well-formed.
/// * Everything casts to `VARCHAR` via its rendering.
pub fn cast_value(v: &Value, to: DataType) -> Result<Value, CastError> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    match (v, to) {
        // Identity casts.
        (Value::Int(_), DataType::Int)
        | (Value::BigInt(_), DataType::BigInt)
        | (Value::Double(_), DataType::Double)
        | (Value::Varchar(_), DataType::Varchar)
        | (Value::Boolean(_), DataType::Boolean) => Ok(v.clone()),

        // Numeric widening / narrowing.
        (Value::Int(x), DataType::BigInt) => Ok(Value::BigInt(*x as i64)),
        (Value::Int(x), DataType::Double) => Ok(Value::Double(*x as f64)),
        (Value::BigInt(x), DataType::Int) => i32::try_from(*x)
            .map(Value::Int)
            .map_err(|_| err(v, to, format!("{x} out of INT range"))),
        (Value::BigInt(x), DataType::Double) => Ok(Value::Double(*x as f64)),
        (Value::Double(x), DataType::Int) => {
            let t = x.trunc();
            if t.is_finite() && t >= i32::MIN as f64 && t <= i32::MAX as f64 {
                Ok(Value::Int(t as i32))
            } else {
                Err(err(v, to, format!("{x} out of INT range")))
            }
        }
        (Value::Double(x), DataType::BigInt) => {
            let t = x.trunc();
            // i64::MAX is not exactly representable as f64; stay within the
            // exactly representable band.
            if t.is_finite() && t >= -(2f64.powi(63)) && t < 2f64.powi(63) {
                Ok(Value::BigInt(t as i64))
            } else {
                Err(err(v, to, format!("{x} out of BIGINT range")))
            }
        }

        // To string.
        (_, DataType::Varchar) => Ok(Value::Varchar(v.render().into())),

        // From string.
        (Value::Varchar(s), DataType::Int) => s
            .trim()
            .parse::<i32>()
            .map(Value::Int)
            .map_err(|e| err(v, to, e.to_string())),
        (Value::Varchar(s), DataType::BigInt) => s
            .trim()
            .parse::<i64>()
            .map(Value::BigInt)
            .map_err(|e| err(v, to, e.to_string())),
        (Value::Varchar(s), DataType::Double) => s
            .trim()
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|e| err(v, to, e.to_string())),
        (Value::Varchar(s), DataType::Boolean) => match s.trim().to_ascii_uppercase().as_str() {
            "TRUE" | "T" | "YES" | "1" => Ok(Value::Boolean(true)),
            "FALSE" | "F" | "NO" | "0" => Ok(Value::Boolean(false)),
            other => Err(err(v, to, format!("{other:?} is not a boolean literal"))),
        },

        // Boolean <-> numeric is not part of the dialect.
        _ => Err(err(v, to, "no cast rule")),
    }
}

/// Implicit cast used when binding argument values to typed parameters:
/// only identity and *widening* numeric conversions are allowed, mirroring
/// the FDBS's function-resolution rules. Anything else must be written as an
/// explicit cast (a cast function or a WfMS helper activity).
pub fn implicit_cast(v: &Value, to: DataType) -> Result<Value, CastError> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let from = v.data_type().expect("non-null value has a type");
    if from == to {
        return Ok(v.clone());
    }
    match (from.numeric_rank(), to.numeric_rank()) {
        (Some(a), Some(b)) if a < b => cast_value(v, to),
        _ => Err(err(
            v,
            to,
            "implicit conversion allowed only for numeric widening",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_casts_to_anything() {
        for dt in [
            DataType::Int,
            DataType::BigInt,
            DataType::Double,
            DataType::Varchar,
            DataType::Boolean,
        ] {
            assert_eq!(cast_value(&Value::Null, dt).unwrap(), Value::Null);
        }
    }

    #[test]
    fn paper_simple_case_int_to_bigint() {
        // The GetNumberSupp1234 example: SELECT BIGINT(GN.Number).
        assert_eq!(
            cast_value(&Value::Int(4711), DataType::BigInt).unwrap(),
            Value::BigInt(4711)
        );
    }

    #[test]
    fn narrowing_overflow_fails() {
        assert!(cast_value(&Value::BigInt(i64::MAX), DataType::Int).is_err());
        assert_eq!(
            cast_value(&Value::BigInt(42), DataType::Int).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn double_truncates_toward_zero() {
        assert_eq!(
            cast_value(&Value::Double(3.9), DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            cast_value(&Value::Double(-3.9), DataType::Int).unwrap(),
            Value::Int(-3)
        );
        assert!(cast_value(&Value::Double(f64::NAN), DataType::Int).is_err());
        assert!(cast_value(&Value::Double(1e300), DataType::BigInt).is_err());
    }

    #[test]
    fn string_parses() {
        assert_eq!(
            cast_value(&Value::str(" 17 "), DataType::Int).unwrap(),
            Value::Int(17)
        );
        assert_eq!(
            cast_value(&Value::str("yes"), DataType::Boolean).unwrap(),
            Value::Boolean(true)
        );
        assert!(cast_value(&Value::str("abc"), DataType::Int).is_err());
    }

    #[test]
    fn everything_renders_to_varchar() {
        assert_eq!(
            cast_value(&Value::Boolean(true), DataType::Varchar).unwrap(),
            Value::str("TRUE")
        );
        assert_eq!(
            cast_value(&Value::Double(2.5), DataType::Varchar).unwrap(),
            Value::str("2.5")
        );
    }

    #[test]
    fn implicit_only_widens() {
        assert_eq!(
            implicit_cast(&Value::Int(1), DataType::BigInt).unwrap(),
            Value::BigInt(1)
        );
        assert!(implicit_cast(&Value::BigInt(1), DataType::Int).is_err());
        assert!(implicit_cast(&Value::str("1"), DataType::Int).is_err());
        assert!(implicit_cast(&Value::Int(1), DataType::Varchar).is_err());
    }

    #[test]
    fn boolean_numeric_has_no_rule() {
        assert!(cast_value(&Value::Boolean(true), DataType::Int).is_err());
        assert!(cast_value(&Value::Int(1), DataType::Boolean).is_err());
    }
}
