//! Identifiers and qualified names.
//!
//! SQL identifiers in the paper's dialect are case-insensitive unless quoted
//! (we model the unquoted behaviour only: identifiers are normalized to a
//! canonical form but remember their original spelling for display).

use std::fmt;
use std::hash::{Hash, Hasher};

/// A case-insensitive SQL identifier.
///
/// Two identifiers compare equal when they match ignoring ASCII case, which
/// is how the FDBS catalog resolves `BuySuppComp` vs `BUYSUPPCOMP`.
#[derive(Debug, Clone)]
pub struct Ident {
    original: String,
    normalized: String,
}

impl Ident {
    pub fn new(s: impl Into<String>) -> Ident {
        let original = s.into();
        let normalized = original.to_ascii_lowercase();
        Ident {
            original,
            normalized,
        }
    }

    /// The identifier as the user wrote it.
    pub fn as_str(&self) -> &str {
        &self.original
    }

    /// The canonical (lower-cased) form used for lookups.
    pub fn normalized(&self) -> &str {
        &self.normalized
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Ident) -> bool {
        self.normalized == other.normalized
    }
}
impl Eq for Ident {}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.normalized.hash(state);
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Ident) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ident {
    fn cmp(&self, other: &Ident) -> std::cmp::Ordering {
        self.normalized.cmp(&other.normalized)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.original)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Ident {
        Ident::new(s)
    }
}
impl From<String> for Ident {
    fn from(s: String) -> Ident {
        Ident::new(s)
    }
}

/// A possibly-qualified name such as `GQ.Qual` or `BuySuppComp.SupplierNo`.
///
/// In the paper's dialect the qualifier is either a FROM-clause correlation
/// name or — inside a `CREATE FUNCTION ... LANGUAGE SQL` body — the federated
/// function's own name, referring to one of its parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QualifiedName {
    pub qualifier: Option<Ident>,
    pub name: Ident,
}

impl QualifiedName {
    pub fn bare(name: impl Into<Ident>) -> QualifiedName {
        QualifiedName {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qualified(qualifier: impl Into<Ident>, name: impl Into<Ident>) -> QualifiedName {
        QualifiedName {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{}.{}", q, self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn idents_compare_case_insensitively() {
        assert_eq!(Ident::new("BuySuppComp"), Ident::new("BUYSUPPCOMP"));
        assert_ne!(Ident::new("GetQuality"), Ident::new("GetReliability"));
    }

    #[test]
    fn idents_hash_case_insensitively() {
        let mut set = HashSet::new();
        set.insert(Ident::new("GetGrade"));
        assert!(set.contains(&Ident::new("getgrade")));
    }

    #[test]
    fn display_preserves_original_spelling() {
        assert_eq!(Ident::new("GetCompNo").to_string(), "GetCompNo");
        assert_eq!(
            QualifiedName::qualified("GQ", "Qual").to_string(),
            "GQ.Qual"
        );
        assert_eq!(QualifiedName::bare("Answer").to_string(), "Answer");
    }

    #[test]
    fn qualified_name_equality() {
        assert_eq!(
            QualifiedName::qualified("gq", "QUAL"),
            QualifiedName::qualified("GQ", "qual")
        );
        assert_ne!(
            QualifiedName::bare("qual"),
            QualifiedName::qualified("gq", "qual")
        );
    }
}
