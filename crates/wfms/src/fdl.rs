//! FDL — a textual *flow definition language* for process models, in the
//! spirit of MQSeries Workflow's buildtime format. [`export_fdl`] renders a
//! [`ProcessModel`] to text and [`parse_fdl`] reads it back;
//! `parse(export(p)) == p` holds for every expressible model and is
//! property-tested against all of the paper's compiled processes.
//!
//! ```text
//! PROCESS GetSuppQual
//! INPUT SupplierName VARCHAR
//! PROGRAM GetSupplierNo CALLS GetSupplierNo
//!   IN SupplierName = INPUT SupplierName
//!   OUT SupplierNo INT
//! PROGRAM GetQuality CALLS GetQuality
//!   IN SupplierNo = OUTPUT GetSupplierNo.SupplierNo
//!   OUT Qual INT
//! CONNECT GetSupplierNo -> GetQuality
//! OUTPUT TABLE GetQuality
//! END
//! ```

use fedwf_types::{DataType, FedError, FedResult, Ident, Value};

use crate::condition::{CondOp, Condition};
use crate::container::ContainerSchema;
use crate::model::{
    Activity, ActivityKind, ControlConnector, DataBinding, DataSource, HelperOp, LoopNode, Node,
    OutputSource, ProcessModel, RetryPolicy,
};

// ===========================================================================
// Export
// ===========================================================================

/// Render a process model as FDL text.
pub fn export_fdl(model: &ProcessModel) -> String {
    let mut out = String::new();
    export_into(model, &mut out, 0);
    out
}

fn indent(depth: usize) -> String {
    "  ".repeat(depth)
}

fn export_into(model: &ProcessModel, out: &mut String, depth: usize) {
    let i0 = indent(depth);
    let i1 = indent(depth + 1);
    out.push_str(&format!("{i0}PROCESS {}\n", model.name));
    if !model.input.is_empty() {
        out.push_str(&format!("{i0}INPUT {}\n", schema_list(&model.input)));
    }
    for node in &model.nodes {
        match node {
            Node::Activity(a) => match &a.kind {
                ActivityKind::Program { function, inputs } => {
                    out.push_str(&format!("{i0}PROGRAM {} CALLS {function}\n", a.name));
                    for b in inputs {
                        out.push_str(&format!(
                            "{i1}IN {} = {}\n",
                            b.target,
                            source_text(&b.source)
                        ));
                    }
                    out.push_str(&format!("{i1}OUT {}\n", schema_list(&a.output)));
                    if a.retry.max_attempts > 1 {
                        out.push_str(&format!("{i1}RETRY {}\n", a.retry.max_attempts));
                    }
                }
                ActivityKind::Helper(HelperOp::Const { value, .. }) => {
                    out.push_str(&format!("{i0}CONST {} = {}\n", a.name, literal_text(value)));
                }
                ActivityKind::Helper(HelperOp::Cast { input, to, .. }) => {
                    out.push_str(&format!(
                        "{i0}CAST {} = {} AS {}\n",
                        a.name,
                        source_text(input),
                        to.sql_name()
                    ));
                }
                ActivityKind::Helper(HelperOp::Add { left, right, .. }) => {
                    out.push_str(&format!(
                        "{i0}ADD {} = {} + {}\n",
                        a.name,
                        source_text(left),
                        source_text(right)
                    ));
                }
                ActivityKind::Helper(HelperOp::Join {
                    left,
                    right,
                    left_on,
                    right_on,
                    project,
                }) => {
                    let projections: Vec<String> = project
                        .iter()
                        .map(|(from_left, src, name)| {
                            format!("{}.{src} AS {name}", if *from_left { left } else { right })
                        })
                        .collect();
                    out.push_str(&format!(
                        "{i0}JOIN {} = {left}.{left_on} WITH {right}.{right_on} PROJECT {}\n",
                        a.name,
                        projections.join(", ")
                    ));
                }
            },
            Node::Loop(l) => {
                out.push_str(&format!(
                    "{i0}LOOP {} VARS {}\n",
                    l.name,
                    schema_list(&l.vars)
                ));
                for b in &l.init {
                    out.push_str(&format!(
                        "{i1}INIT {} = {}\n",
                        b.target,
                        source_text(&b.source)
                    ));
                }
                if let Some((var, step)) = &l.counter {
                    out.push_str(&format!("{i1}COUNTER {var} STEP {step}\n"));
                }
                for (var, from) in &l.update {
                    out.push_str(&format!("{i1}UPDATE {var} = {from}\n"));
                }
                out.push_str(&format!("{i1}UNTIL {}\n", condition_text(&l.until)));
                if l.accumulate {
                    out.push_str(&format!("{i1}ACCUMULATE\n"));
                }
                out.push_str(&format!("{i1}MAXITER {}\n", l.max_iterations));
                out.push_str(&format!("{i1}BODY\n"));
                export_into(&l.body, out, depth + 2);
                out.push_str(&format!("{i1}ENDBODY\n"));
            }
        }
    }
    for c in &model.connectors {
        if c.condition == Condition::True {
            out.push_str(&format!("{i0}CONNECT {} -> {}\n", c.from, c.to));
        } else {
            out.push_str(&format!(
                "{i0}CONNECT {} -> {} WHEN {}\n",
                c.from,
                c.to,
                condition_text(&c.condition)
            ));
        }
    }
    match &model.output {
        OutputSource::NodeTable(name) => {
            out.push_str(&format!("{i0}OUTPUT TABLE {name}\n"));
        }
        OutputSource::Row(fields) => {
            let parts: Vec<String> = fields
                .iter()
                .map(|(name, dt, source)| {
                    format!("{name} {} = {}", dt.sql_name(), source_text(source))
                })
                .collect();
            out.push_str(&format!("{i0}OUTPUT ROW {}\n", parts.join(", ")));
        }
    }
    out.push_str(&format!("{i0}END\n"));
}

fn schema_list(schema: &ContainerSchema) -> String {
    schema
        .fields()
        .iter()
        .map(|(n, t)| format!("{n} {}", t.sql_name()))
        .collect::<Vec<_>>()
        .join(", ")
}

fn source_text(source: &DataSource) -> String {
    match source {
        DataSource::ProcessInput(f) => format!("INPUT {f}"),
        DataSource::ActivityOutput { activity, field } => format!("OUTPUT {activity}.{field}"),
        DataSource::Constant(v) => format!("CONST {}", literal_text(v)),
    }
}

fn literal_text(v: &Value) -> String {
    match v {
        Value::Varchar(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.render(),
    }
}

fn cond_op_text(op: CondOp) -> &'static str {
    match op {
        CondOp::Eq => "=",
        CondOp::NotEq => "<>",
        CondOp::Lt => "<",
        CondOp::LtEq => "<=",
        CondOp::Gt => ">",
        CondOp::GtEq => ">=",
    }
}

fn condition_text(c: &Condition) -> String {
    match c {
        Condition::True => "TRUE".to_string(),
        Condition::Cmp { field, op, value } => {
            format!("{field} {} {}", cond_op_text(*op), literal_text(value))
        }
        Condition::CmpField { left, op, right } => {
            format!("{left} {} {right}", cond_op_text(*op))
        }
        Condition::And(a, b) => format!("({} AND {})", condition_text(a), condition_text(b)),
        Condition::Or(a, b) => format!("({} OR {})", condition_text(a), condition_text(b)),
        Condition::Not(inner) => format!("NOT {}", condition_text(inner)),
    }
}

// ===========================================================================
// Parse
// ===========================================================================

/// Parse FDL text into a process model. The result is structurally
/// validated through the same checks the builder applies.
pub fn parse_fdl(text: &str) -> FedResult<ProcessModel> {
    let mut lines = Lines::new(text);
    let model = parse_process(&mut lines)?;
    if let Some((n, line)) = lines.peek() {
        return Err(FedError::workflow(format!(
            "FDL line {n}: unexpected content after END: {line}"
        )));
    }
    crate::builder::validate(&model)?;
    Ok(model)
}

struct Lines<'a> {
    items: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Lines<'a> {
        Lines {
            items: text
                .lines()
                .enumerate()
                .map(|(i, l)| (i + 1, l.trim()))
                .filter(|(_, l)| !l.is_empty() && !l.starts_with("--"))
                .collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.items.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let item = self.items.get(self.pos).copied();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }
}

fn err_at(n: usize, msg: impl std::fmt::Display) -> FedError {
    FedError::workflow(format!("FDL line {n}: {msg}"))
}

/// First word (uppercased) and the rest of a line.
fn split_keyword(line: &str) -> (String, &str) {
    match line.split_once(char::is_whitespace) {
        Some((head, rest)) => (head.to_ascii_uppercase(), rest.trim()),
        None => (line.to_ascii_uppercase(), ""),
    }
}

fn parse_process(lines: &mut Lines) -> FedResult<ProcessModel> {
    let (n, line) = lines
        .next()
        .ok_or_else(|| FedError::workflow("FDL: empty input"))?;
    let (kw, rest) = split_keyword(line);
    if kw != "PROCESS" || rest.is_empty() {
        return Err(err_at(n, "expected PROCESS <name>"));
    }
    let name = rest.to_string();
    let mut input = ContainerSchema::empty();
    let mut nodes: Vec<Node> = Vec::new();
    let mut connectors: Vec<ControlConnector> = Vec::new();
    let mut output: Option<OutputSource> = None;

    loop {
        let (n, line) = lines
            .next()
            .ok_or_else(|| FedError::workflow("FDL: missing END"))?;
        let (kw, rest) = split_keyword(line);
        match kw.as_str() {
            "END" => break,
            "INPUT" => input = parse_schema_list(n, rest)?,
            "PROGRAM" => nodes.push(parse_program(lines, n, rest)?),
            "CONST" => {
                let (id, value_text) = split_eq(n, rest)?;
                let value = parse_literal(n, value_text)?;
                let dt = value.data_type().unwrap_or(DataType::Varchar);
                nodes.push(Node::Activity(Activity {
                    name: Ident::new(id),
                    kind: ActivityKind::Helper(HelperOp::Const {
                        value,
                        output_field: Ident::new("value"),
                    }),
                    output: ContainerSchema::new(&[("value", dt)]),
                    retry: RetryPolicy::default(),
                }));
            }
            "CAST" => {
                let (id, rhs) = split_eq(n, rest)?;
                let (source_text, type_text) = rhs
                    .rsplit_once(" AS ")
                    .ok_or_else(|| err_at(n, "expected CAST <id> = <source> AS <TYPE>"))?;
                let to = parse_type(n, type_text.trim())?;
                nodes.push(Node::Activity(Activity {
                    name: Ident::new(id),
                    kind: ActivityKind::Helper(HelperOp::Cast {
                        input: parse_source(n, source_text.trim())?,
                        to,
                        output_field: Ident::new("value"),
                    }),
                    output: ContainerSchema::new(&[("value", to)]),
                    retry: RetryPolicy::default(),
                }));
            }
            "ADD" => {
                let (id, rhs) = split_eq(n, rest)?;
                let (l, r) = rhs
                    .split_once(" + ")
                    .ok_or_else(|| err_at(n, "expected ADD <id> = <source> + <source>"))?;
                nodes.push(Node::Activity(Activity {
                    name: Ident::new(id),
                    kind: ActivityKind::Helper(HelperOp::Add {
                        left: parse_source(n, l.trim())?,
                        right: parse_source(n, r.trim())?,
                        output_field: Ident::new("value"),
                    }),
                    output: ContainerSchema::new(&[("value", DataType::Int)]),
                    retry: RetryPolicy::default(),
                }));
            }
            "JOIN" => nodes.push(parse_join(n, rest, &nodes)?),
            "LOOP" => nodes.push(parse_loop(lines, n, rest)?),
            "CONNECT" => {
                let (spec, condition) = match rest.split_once(" WHEN ") {
                    Some((spec, cond)) => (spec, parse_condition(n, cond.trim())?),
                    None => (rest, Condition::True),
                };
                let (from, to) = spec
                    .split_once("->")
                    .ok_or_else(|| err_at(n, "expected CONNECT <from> -> <to>"))?;
                connectors.push(ControlConnector {
                    from: Ident::new(from.trim()),
                    to: Ident::new(to.trim()),
                    condition,
                });
            }
            "OUTPUT" => {
                let (mode, spec) = split_keyword(rest);
                output = Some(match mode.as_str() {
                    "TABLE" => OutputSource::NodeTable(Ident::new(spec)),
                    "ROW" => {
                        let mut fields = Vec::new();
                        for part in split_top_level_commas(spec) {
                            let (decl, source_text) = split_eq(n, &part)?;
                            let (fname, ftype) = decl
                                .rsplit_once(' ')
                                .ok_or_else(|| err_at(n, "expected <name> <TYPE> = <source>"))?;
                            fields.push((
                                Ident::new(fname.trim()),
                                parse_type(n, ftype.trim())?,
                                parse_source(n, source_text.trim())?,
                            ));
                        }
                        OutputSource::Row(fields)
                    }
                    other => return Err(err_at(n, format!("unknown OUTPUT mode {other}"))),
                });
            }
            other => return Err(err_at(n, format!("unknown FDL keyword {other}"))),
        }
    }

    Ok(ProcessModel {
        name,
        input,
        nodes,
        connectors,
        output: output.ok_or_else(|| FedError::workflow("FDL: process has no OUTPUT"))?,
    })
}

fn parse_program(lines: &mut Lines, n: usize, rest: &str) -> FedResult<Node> {
    let (id, function) = rest
        .split_once(" CALLS ")
        .ok_or_else(|| err_at(n, "expected PROGRAM <id> CALLS <function>"))?;
    let mut inputs = Vec::new();
    let mut output = None;
    let mut retry = RetryPolicy::default();
    while let Some((ln, line)) = lines.peek() {
        let (kw, body) = split_keyword(line);
        match kw.as_str() {
            "IN" => {
                lines.next();
                let (target, source_text) = split_eq(ln, body)?;
                inputs.push(DataBinding {
                    target: Ident::new(target),
                    source: parse_source(ln, source_text.trim())?,
                });
            }
            "OUT" => {
                lines.next();
                output = Some(parse_schema_list(ln, body)?);
            }
            "RETRY" => {
                lines.next();
                let attempts: u32 = body
                    .trim()
                    .parse()
                    .map_err(|e| err_at(ln, format!("bad RETRY count: {e}")))?;
                retry = RetryPolicy {
                    max_attempts: attempts,
                };
            }
            _ => break,
        }
    }
    Ok(Node::Activity(Activity {
        name: Ident::new(id.trim()),
        kind: ActivityKind::Program {
            function: function.trim().to_string(),
            inputs,
        },
        output: output.ok_or_else(|| err_at(n, "PROGRAM without OUT line"))?,
        retry,
    }))
}

fn parse_join(n: usize, rest: &str, existing: &[Node]) -> FedResult<Node> {
    // JOIN <id> = <left>.<on> WITH <right>.<on> PROJECT a.b AS c, ...
    let (id, rhs) = split_eq(n, rest)?;
    let (pair, projection) = rhs
        .split_once(" PROJECT ")
        .ok_or_else(|| err_at(n, "expected JOIN ... PROJECT ..."))?;
    let (l, r) = pair
        .split_once(" WITH ")
        .ok_or_else(|| err_at(n, "expected <left>.<col> WITH <right>.<col>"))?;
    let (left, left_on) = split_dotted(n, l.trim())?;
    let (right, right_on) = split_dotted(n, r.trim())?;
    let mut project = Vec::new();
    for part in split_top_level_commas(projection) {
        let (src, out_name) = part
            .split_once(" AS ")
            .ok_or_else(|| err_at(n, "expected <node>.<col> AS <name> in PROJECT"))?;
        let (node, col) = split_dotted(n, src.trim())?;
        let from_left = if node == left {
            true
        } else if node == right {
            false
        } else {
            return Err(err_at(
                n,
                format!("PROJECT references {node}, expected {left} or {right}"),
            ));
        };
        project.push((from_left, col, Ident::new(out_name.trim())));
    }
    // Resolve the output schema from the already-parsed sides.
    let schema_of = |name: &Ident| -> FedResult<ContainerSchema> {
        existing
            .iter()
            .find(|node| node.name() == name)
            .map(|node| node.output_schema())
            .ok_or_else(|| err_at(n, format!("JOIN references unknown node {name}")))
    };
    let ls = schema_of(&left)?;
    let rs = schema_of(&right)?;
    let mut fields = Vec::new();
    for (from_left, src, out_name) in &project {
        let side = if *from_left { &ls } else { &rs };
        let dt = side
            .field_type(src)
            .ok_or_else(|| err_at(n, format!("JOIN projects unknown column {src}")))?;
        fields.push((out_name.as_str().to_string(), dt));
    }
    let spec: Vec<(&str, DataType)> = fields.iter().map(|(s, t)| (s.as_str(), *t)).collect();
    Ok(Node::Activity(Activity {
        name: Ident::new(id),
        kind: ActivityKind::Helper(HelperOp::Join {
            left,
            right,
            left_on,
            right_on,
            project,
        }),
        output: ContainerSchema::new(&spec),
        retry: RetryPolicy::default(),
    }))
}

fn parse_loop(lines: &mut Lines, n: usize, rest: &str) -> FedResult<Node> {
    let (id, vars_text) = rest
        .split_once(" VARS ")
        .ok_or_else(|| err_at(n, "expected LOOP <id> VARS <fields>"))?;
    let vars = parse_schema_list(n, vars_text)?;
    let mut init = Vec::new();
    let mut counter = None;
    let mut update = Vec::new();
    let mut until = None;
    let mut accumulate = false;
    let mut max_iterations = None;
    let body = loop {
        let (ln, line) = lines
            .next()
            .ok_or_else(|| err_at(n, "LOOP without ENDBODY/END"))?;
        let (kw, rest) = split_keyword(line);
        match kw.as_str() {
            "INIT" => {
                let (target, source_text) = split_eq(ln, rest)?;
                init.push(DataBinding {
                    target: Ident::new(target),
                    source: parse_source(ln, source_text.trim())?,
                });
            }
            "COUNTER" => {
                let (var, step_text) = rest
                    .split_once(" STEP ")
                    .ok_or_else(|| err_at(ln, "expected COUNTER <var> STEP <n>"))?;
                let step: i64 = step_text
                    .trim()
                    .parse()
                    .map_err(|e| err_at(ln, format!("bad STEP: {e}")))?;
                counter = Some((Ident::new(var.trim()), step));
            }
            "UPDATE" => {
                let (var, from) = split_eq(ln, rest)?;
                update.push((Ident::new(var), Ident::new(from.trim())));
            }
            "UNTIL" => until = Some(parse_condition(ln, rest)?),
            "ACCUMULATE" => accumulate = true,
            "MAXITER" => {
                max_iterations = Some(
                    rest.trim()
                        .parse()
                        .map_err(|e| err_at(ln, format!("bad MAXITER: {e}")))?,
                )
            }
            "BODY" => {
                let parsed = parse_process(lines)?;
                let (ln2, line2) = lines
                    .next()
                    .ok_or_else(|| err_at(ln, "BODY without ENDBODY"))?;
                if split_keyword(line2).0 != "ENDBODY" {
                    return Err(err_at(ln2, "expected ENDBODY"));
                }
                break parsed;
            }
            other => return Err(err_at(ln, format!("unknown LOOP keyword {other}"))),
        }
    };
    Ok(Node::Loop(LoopNode {
        name: Ident::new(id.trim()),
        vars,
        init,
        body,
        update,
        counter,
        until: until.ok_or_else(|| err_at(n, "LOOP without UNTIL"))?,
        accumulate,
        max_iterations: max_iterations.ok_or_else(|| err_at(n, "LOOP without MAXITER"))?,
    }))
}

// ---- small parsers --------------------------------------------------------

fn split_eq(n: usize, text: &str) -> FedResult<(&str, &str)> {
    text.split_once('=')
        .map(|(a, b)| (a.trim(), b.trim()))
        .ok_or_else(|| err_at(n, "expected <lhs> = <rhs>"))
}

fn split_dotted(n: usize, text: &str) -> FedResult<(Ident, Ident)> {
    text.split_once('.')
        .map(|(a, b)| (Ident::new(a.trim()), Ident::new(b.trim())))
        .ok_or_else(|| err_at(n, format!("expected <node>.<column>, got {text}")))
}

/// Split on commas that are not inside quotes.
fn split_top_level_commas(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for ch in text.chars() {
        match ch {
            '\'' => {
                in_string = !in_string;
                current.push(ch);
            }
            ',' if !in_string => {
                parts.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current.trim().to_string());
    }
    parts
}

fn parse_schema_list(n: usize, text: &str) -> FedResult<ContainerSchema> {
    let mut fields = Vec::new();
    for part in split_top_level_commas(text) {
        let (name, ty) = part
            .rsplit_once(' ')
            .ok_or_else(|| err_at(n, format!("expected <name> <TYPE>, got {part}")))?;
        fields.push((name.trim().to_string(), parse_type(n, ty.trim())?));
    }
    let spec: Vec<(&str, DataType)> = fields.iter().map(|(s, t)| (s.as_str(), *t)).collect();
    Ok(ContainerSchema::new(&spec))
}

fn parse_type(n: usize, text: &str) -> FedResult<DataType> {
    DataType::parse(text).ok_or_else(|| err_at(n, format!("unknown type {text}")))
}

fn parse_source(n: usize, text: &str) -> FedResult<DataSource> {
    let (kw, rest) = split_keyword(text);
    match kw.as_str() {
        "INPUT" => Ok(DataSource::ProcessInput(Ident::new(rest))),
        "OUTPUT" => {
            let (node, field) = split_dotted(n, rest)?;
            Ok(DataSource::ActivityOutput {
                activity: node,
                field,
            })
        }
        "CONST" => Ok(DataSource::Constant(parse_literal(n, rest)?)),
        other => Err(err_at(
            n,
            format!("expected INPUT/OUTPUT/CONST source, got {other}"),
        )),
    }
}

fn parse_literal(n: usize, text: &str) -> FedResult<Value> {
    let t = text.trim();
    if t.eq_ignore_ascii_case("NULL") {
        return Ok(Value::Null);
    }
    if t.eq_ignore_ascii_case("TRUE") {
        return Ok(Value::Boolean(true));
    }
    if t.eq_ignore_ascii_case("FALSE") {
        return Ok(Value::Boolean(false));
    }
    if t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2 {
        return Ok(Value::Varchar(t[1..t.len() - 1].replace("''", "'").into()));
    }
    if let Ok(v) = t.parse::<i32>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = t.parse::<i64>() {
        return Ok(Value::BigInt(v));
    }
    if let Ok(v) = t.parse::<f64>() {
        return Ok(Value::Double(v));
    }
    Err(err_at(n, format!("cannot parse literal {t}")))
}

/// Conditions: `TRUE`, `<field> <op> <literal-or-field>`, `NOT <cond>`,
/// and parenthesized `(<a> AND <b>)` / `(<a> OR <b>)` — exactly the shape
/// the exporter emits.
fn parse_condition(n: usize, text: &str) -> FedResult<Condition> {
    let t = text.trim();
    if t.eq_ignore_ascii_case("TRUE") {
        return Ok(Condition::True);
    }
    if let Some(rest) = strip_keyword(t, "NOT") {
        return Ok(Condition::Not(Box::new(parse_condition(n, rest)?)));
    }
    if t.starts_with('(') && t.ends_with(')') {
        let inner = &t[1..t.len() - 1];
        // Find the top-level AND/OR.
        if let Some((a, b, is_and)) = split_bool(inner) {
            let left = Box::new(parse_condition(n, a)?);
            let right = Box::new(parse_condition(n, b)?);
            return Ok(if is_and {
                Condition::And(left, right)
            } else {
                Condition::Or(left, right)
            });
        }
        return parse_condition(n, inner);
    }
    // Comparison: find the operator (longest first).
    for op_text in ["<=", ">=", "<>", "=", "<", ">"] {
        if let Some((l, r)) = t.split_once(op_text) {
            let op = match op_text {
                "=" => CondOp::Eq,
                "<>" => CondOp::NotEq,
                "<" => CondOp::Lt,
                "<=" => CondOp::LtEq,
                ">" => CondOp::Gt,
                ">=" => CondOp::GtEq,
                _ => unreachable!(),
            };
            let field = Ident::new(l.trim());
            let rhs = r.trim();
            // An identifier on the right makes it a field-field compare.
            let is_ident = rhs
                .chars()
                .next()
                .map(|c| c.is_ascii_alphabetic() || c == '_')
                .unwrap_or(false)
                && !rhs.eq_ignore_ascii_case("TRUE")
                && !rhs.eq_ignore_ascii_case("FALSE")
                && !rhs.eq_ignore_ascii_case("NULL");
            return Ok(if is_ident {
                Condition::CmpField {
                    left: field,
                    op,
                    right: Ident::new(rhs),
                }
            } else {
                Condition::Cmp {
                    field,
                    op,
                    value: parse_literal(n, rhs)?,
                }
            });
        }
    }
    Err(err_at(n, format!("cannot parse condition {t}")))
}

fn strip_keyword<'a>(text: &'a str, kw: &str) -> Option<&'a str> {
    let upper = text.to_ascii_uppercase();
    if upper.starts_with(kw)
        && text[kw.len()..]
            .chars()
            .next()
            .map(char::is_whitespace)
            .unwrap_or(false)
    {
        Some(text[kw.len()..].trim_start())
    } else {
        None
    }
}

/// Split `a AND b` / `a OR b` at the top parenthesis level; returns
/// `(left, right, is_and)`.
fn split_bool(text: &str) -> Option<(&str, &str, bool)> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let upper = text.to_ascii_uppercase();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'\'' => in_string = !in_string,
            b'(' if !in_string => depth += 1,
            b')' if !in_string => depth = depth.saturating_sub(1),
            _ if depth == 0 && !in_string => {
                if upper[i..].starts_with(" AND ") {
                    return Some((&text[..i], &text[i + 5..], true));
                }
                if upper[i..].starts_with(" OR ") {
                    return Some((&text[..i], &text[i + 4..], false));
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;

    fn linear() -> ProcessModel {
        ProcessBuilder::new("GetSuppQual")
            .input(&[("SupplierName", DataType::Varchar)])
            .program(
                "GetSupplierNo",
                "GetSupplierNo",
                vec![DataBinding::new(
                    "SupplierName",
                    DataSource::input("SupplierName"),
                )],
                &[("SupplierNo", DataType::Int)],
            )
            .with_retry(3)
            .program(
                "GetQuality",
                "GetQuality",
                vec![DataBinding::new(
                    "SupplierNo",
                    DataSource::output("GetSupplierNo", "SupplierNo"),
                )],
                &[("Qual", DataType::Int)],
            )
            .sequence(&["GetSupplierNo", "GetQuality"])
            .output_table("GetQuality")
            .build()
            .unwrap()
    }

    #[test]
    fn export_emits_expected_shape() {
        let text = export_fdl(&linear());
        assert!(text.contains("PROCESS GetSuppQual"));
        assert!(text.contains("PROGRAM GetSupplierNo CALLS GetSupplierNo"));
        assert!(text.contains("IN SupplierName = INPUT SupplierName"));
        assert!(text.contains("RETRY 3"));
        assert!(text.contains("CONNECT GetSupplierNo -> GetQuality"));
        assert!(text.contains("OUTPUT TABLE GetQuality"));
        assert!(text.trim_end().ends_with("END"));
    }

    #[test]
    fn linear_round_trip() {
        let original = linear();
        let reparsed = parse_fdl(&export_fdl(&original)).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn helpers_round_trip() {
        let model = ProcessBuilder::new("helpers")
            .input(&[("x", DataType::Int)])
            .constant("c", "hello'world")
            .cast("w", DataSource::input("x"), DataType::BigInt)
            .add("a", DataSource::input("x"), DataSource::constant(1))
            .program(
                "p",
                "F",
                vec![],
                &[("u", DataType::Int), ("v", DataType::Int)],
            )
            .program(
                "q",
                "G",
                vec![],
                &[("u", DataType::Int), ("w2", DataType::Varchar)],
            )
            .join(
                "j",
                "p",
                "q",
                "u",
                "u",
                &[(true, "v", "v"), (false, "w2", "w2")],
            )
            .connector("p", "j")
            .connector("q", "j")
            .output_table("j")
            .build()
            .unwrap();
        let text = export_fdl(&model);
        let reparsed = parse_fdl(&text).unwrap();
        assert_eq!(model, reparsed, "FDL:\n{text}");
    }

    #[test]
    fn conditions_round_trip() {
        let model = ProcessBuilder::new("cond")
            .input(&[])
            .constant("a", 5)
            .constant("b", 6)
            .connector_if(
                "a",
                "b",
                Condition::cmp("value", CondOp::GtEq, 3)
                    .and(Condition::eq("value", 5).negate())
                    .or(Condition::cmp("value", CondOp::Lt, Value::str("x"))),
            )
            .output_table("b")
            .build()
            .unwrap();
        let text = export_fdl(&model);
        let reparsed = parse_fdl(&text).unwrap();
        assert_eq!(model, reparsed, "FDL:\n{text}");
    }

    #[test]
    fn loop_round_trip() {
        let body = ProcessBuilder::new("body")
            .input(&[("i", DataType::Int), ("limit", DataType::Int)])
            .program(
                "R",
                "Render",
                vec![DataBinding::new("i", DataSource::input("i"))],
                &[("Text", DataType::Varchar)],
            )
            .output_table("R")
            .build()
            .unwrap();
        let model = ProcessBuilder::new("loopy")
            .input(&[("n", DataType::Int)])
            .loop_node(LoopNode {
                name: Ident::new("L"),
                vars: ContainerSchema::new(&[("i", DataType::Int), ("limit", DataType::Int)]),
                init: vec![
                    DataBinding::new("i", DataSource::constant(1)),
                    DataBinding::new("limit", DataSource::input("n")),
                ],
                body,
                update: vec![],
                counter: Some((Ident::new("i"), 1)),
                until: Condition::cmp_fields("i", CondOp::Gt, "limit"),
                accumulate: true,
                max_iterations: 500,
            })
            .output_table("L")
            .build()
            .unwrap();
        let text = export_fdl(&model);
        let reparsed = parse_fdl(&text).unwrap();
        assert_eq!(model, reparsed, "FDL:\n{text}");
    }

    #[test]
    fn output_row_round_trip() {
        let model = ProcessBuilder::new("rowout")
            .input(&[("x", DataType::Int)])
            .constant("c", 9)
            .output_row(&[
                ("a", DataType::Int, DataSource::output("c", "value")),
                (
                    "b",
                    DataType::Varchar,
                    DataSource::Constant(Value::str("s, with comma")),
                ),
                ("d", DataType::Int, DataSource::input("x")),
            ])
            .build()
            .unwrap();
        let reparsed = parse_fdl(&export_fdl(&model)).unwrap();
        assert_eq!(model, reparsed);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_fdl("PROCESS p\nBOGUS line\nEND").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_fdl("PROCESS p\nOUTPUT TABLE missing\nEND\ntrailing").unwrap_err();
        assert!(err.to_string().contains("line 4") || err.to_string().contains("unknown"));
    }

    #[test]
    fn parsed_model_is_validated() {
        // The connector references an unknown node: builder validation
        // must reject it.
        let text = "PROCESS p\nCONST a = 1\nCONNECT a -> ghost\nOUTPUT TABLE a\nEND\n";
        let err = parse_fdl(text).unwrap_err();
        assert!(err.to_string().contains("ghost") || err.to_string().contains("unknown"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "-- a comment\nPROCESS p\n\nCONST a = 1\n-- another\nOUTPUT TABLE a\nEND\n";
        let model = parse_fdl(text).unwrap();
        assert_eq!(model.name, "p");
        assert_eq!(model.nodes.len(), 1);
    }
}
