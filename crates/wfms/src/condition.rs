//! Transition and loop-exit conditions evaluated over containers.

use fedwf_types::{FedResult, Ident, Value};

use crate::container::Container;

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CondOp {
    fn evaluate(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CondOp::Eq => ord == Equal,
            CondOp::NotEq => ord != Equal,
            CondOp::Lt => ord == Less,
            CondOp::LtEq => ord != Greater,
            CondOp::Gt => ord == Greater,
            CondOp::GtEq => ord != Less,
        }
    }
}

/// A boolean condition over a container, as written on a control connector
/// (transition condition) or a loop block (exit condition).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Unconditional (a plain control connector).
    True,
    /// `field <op> literal`. Comparison with NULL is false (the connector
    /// does not fire), matching production-workflow semantics where an
    /// unset output means "no decision".
    Cmp {
        field: Ident,
        op: CondOp,
        value: Value,
    },
    /// `left_field <op> right_field` — both read from the same container
    /// (loop-exit conditions like `i > limit`).
    CmpField {
        left: Ident,
        op: CondOp,
        right: Ident,
    },
    And(Box<Condition>, Box<Condition>),
    Or(Box<Condition>, Box<Condition>),
    Not(Box<Condition>),
}

impl Condition {
    pub fn cmp(field: &str, op: CondOp, value: impl Into<Value>) -> Condition {
        Condition::Cmp {
            field: Ident::new(field),
            op,
            value: value.into(),
        }
    }

    pub fn eq(field: &str, value: impl Into<Value>) -> Condition {
        Condition::cmp(field, CondOp::Eq, value)
    }

    pub fn cmp_fields(left: &str, op: CondOp, right: &str) -> Condition {
        Condition::CmpField {
            left: Ident::new(left),
            op,
            right: Ident::new(right),
        }
    }

    pub fn and(self, other: Condition) -> Condition {
        Condition::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Condition) -> Condition {
        Condition::Or(Box::new(self), Box::new(other))
    }

    pub fn negate(self) -> Condition {
        Condition::Not(Box::new(self))
    }

    /// Evaluate over a container. NULL comparisons yield `false` (two-valued
    /// at this level: a connector either fires or it does not).
    pub fn evaluate(&self, container: &Container) -> FedResult<bool> {
        match self {
            Condition::True => Ok(true),
            Condition::Cmp { field, op, value } => {
                let actual = container.get(field)?;
                Ok(actual
                    .sql_cmp(value)
                    .map(|ord| op.evaluate(ord))
                    .unwrap_or(false))
            }
            Condition::CmpField { left, op, right } => {
                let l = container.get(left)?;
                let r = container.get(right)?;
                Ok(l.sql_cmp(&r).map(|ord| op.evaluate(ord)).unwrap_or(false))
            }
            Condition::And(a, b) => Ok(a.evaluate(container)? && b.evaluate(container)?),
            Condition::Or(a, b) => Ok(a.evaluate(container)? || b.evaluate(container)?),
            Condition::Not(c) => Ok(!c.evaluate(container)?),
        }
    }

    /// Fields the condition references (for buildtime validation).
    pub fn referenced_fields(&self) -> Vec<&Ident> {
        match self {
            Condition::True => vec![],
            Condition::Cmp { field, .. } => vec![field],
            Condition::CmpField { left, right, .. } => vec![left, right],
            Condition::And(a, b) | Condition::Or(a, b) => {
                let mut v = a.referenced_fields();
                v.extend(b.referenced_fields());
                v
            }
            Condition::Not(c) => c.referenced_fields(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerSchema;
    use fedwf_types::DataType;

    fn container(n: i32) -> Container {
        let mut c = ContainerSchema::new(&[("i", DataType::Int)]).instantiate();
        c.set(&Ident::new("i"), Value::Int(n)).unwrap();
        c
    }

    #[test]
    fn comparisons() {
        let c = container(5);
        assert!(Condition::eq("i", 5).evaluate(&c).unwrap());
        assert!(Condition::cmp("i", CondOp::Lt, 10).evaluate(&c).unwrap());
        assert!(!Condition::cmp("i", CondOp::Gt, 5).evaluate(&c).unwrap());
        assert!(Condition::cmp("i", CondOp::GtEq, 5).evaluate(&c).unwrap());
    }

    #[test]
    fn null_comparisons_do_not_fire() {
        let c = ContainerSchema::new(&[("i", DataType::Int)]).instantiate();
        assert!(!Condition::eq("i", 5).evaluate(&c).unwrap());
        // But NOT(i = 5) fires, because NOT(false) = true at this level.
        assert!(Condition::eq("i", 5).negate().evaluate(&c).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let c = container(5);
        assert!(Condition::eq("i", 5)
            .and(Condition::cmp("i", CondOp::Lt, 6))
            .evaluate(&c)
            .unwrap());
        assert!(Condition::eq("i", 9)
            .or(Condition::eq("i", 5))
            .evaluate(&c)
            .unwrap());
        assert!(!Condition::True.negate().evaluate(&c).unwrap());
    }

    #[test]
    fn unknown_field_is_an_error() {
        let c = container(1);
        assert!(Condition::eq("missing", 1).evaluate(&c).is_err());
    }

    #[test]
    fn referenced_fields_collected() {
        let cond = Condition::eq("a", 1).and(Condition::eq("b", 2).negate());
        let fields: Vec<String> = cond
            .referenced_fields()
            .iter()
            .map(|f| f.normalized().to_string())
            .collect();
        assert_eq!(fields, vec!["a", "b"]);
    }
}
