//! Buildtime: the fluent [`ProcessBuilder`] and full model validation.

use std::collections::{HashMap, HashSet};

use fedwf_types::{DataType, FedError, FedResult, Ident, Value};

use crate::condition::Condition;
use crate::container::ContainerSchema;
use crate::model::{
    Activity, ActivityKind, ControlConnector, DataBinding, DataSource, HelperOp, LoopNode, Node,
    OutputSource, ProcessModel, RetryPolicy,
};

/// Fluent builder for [`ProcessModel`]s. `build()` validates the complete
/// model; an invalid model is unrepresentable downstream.
pub struct ProcessBuilder {
    name: String,
    input: ContainerSchema,
    nodes: Vec<Node>,
    connectors: Vec<ControlConnector>,
    output: Option<OutputSource>,
}

impl ProcessBuilder {
    pub fn new(name: impl Into<String>) -> ProcessBuilder {
        ProcessBuilder {
            name: name.into(),
            input: ContainerSchema::empty(),
            nodes: vec![],
            connectors: vec![],
            output: None,
        }
    }

    /// Declare the process input container.
    pub fn input(mut self, fields: &[(&str, DataType)]) -> Self {
        self.input = ContainerSchema::new(fields);
        self
    }

    /// Add a program activity calling `function` with positionally bound
    /// inputs and a declared output container.
    pub fn program(
        mut self,
        name: &str,
        function: &str,
        inputs: Vec<DataBinding>,
        output: &[(&str, DataType)],
    ) -> Self {
        self.nodes.push(Node::Activity(Activity {
            name: Ident::new(name),
            kind: ActivityKind::Program {
                function: function.to_string(),
                inputs,
            },
            output: ContainerSchema::new(output),
            retry: RetryPolicy::default(),
        }));
        self
    }

    /// Set the retry policy of the most recently added activity.
    pub fn with_retry(mut self, max_attempts: u32) -> Self {
        if let Some(Node::Activity(a)) = self.nodes.last_mut() {
            a.retry = RetryPolicy { max_attempts };
        }
        self
    }

    /// Helper activity: type cast (the simple case).
    pub fn cast(mut self, name: &str, input: DataSource, to: DataType) -> Self {
        let output_field = Ident::new("value");
        self.nodes.push(Node::Activity(Activity {
            name: Ident::new(name),
            kind: ActivityKind::Helper(HelperOp::Cast {
                input,
                to,
                output_field: output_field.clone(),
            }),
            output: ContainerSchema::new(&[("value", to)]),
            retry: RetryPolicy::default(),
        }));
        self
    }

    /// Helper activity: constant supply (the simple case).
    pub fn constant(mut self, name: &str, value: impl Into<Value>) -> Self {
        let value = value.into();
        let dt = value.data_type().unwrap_or(DataType::Varchar);
        self.nodes.push(Node::Activity(Activity {
            name: Ident::new(name),
            kind: ActivityKind::Helper(HelperOp::Const {
                value,
                output_field: Ident::new("value"),
            }),
            output: ContainerSchema::new(&[("value", dt)]),
            retry: RetryPolicy::default(),
        }));
        self
    }

    /// Helper activity: integer addition (loop counters).
    pub fn add(mut self, name: &str, left: DataSource, right: DataSource) -> Self {
        self.nodes.push(Node::Activity(Activity {
            name: Ident::new(name),
            kind: ActivityKind::Helper(HelperOp::Add {
                left,
                right,
                output_field: Ident::new("value"),
            }),
            output: ContainerSchema::new(&[("value", DataType::Int)]),
            retry: RetryPolicy::default(),
        }));
        self
    }

    /// Helper activity: join-compose the tables of two upstream activities
    /// (the independent case). `project` lists `(from_left, source_column,
    /// output_name)`; the output schema is resolved during `build()`.
    pub fn join(
        mut self,
        name: &str,
        left: &str,
        right: &str,
        left_on: &str,
        right_on: &str,
        project: &[(bool, &str, &str)],
    ) -> Self {
        self.nodes.push(Node::Activity(Activity {
            name: Ident::new(name),
            kind: ActivityKind::Helper(HelperOp::Join {
                left: Ident::new(left),
                right: Ident::new(right),
                left_on: Ident::new(left_on),
                right_on: Ident::new(right_on),
                project: project
                    .iter()
                    .map(|(l, src, out)| (*l, Ident::new(*src), Ident::new(*out)))
                    .collect(),
            }),
            // Placeholder; resolved in build().
            output: ContainerSchema::empty(),
            retry: RetryPolicy::default(),
        }));
        self
    }

    /// Add a do-until loop node.
    pub fn loop_node(mut self, node: LoopNode) -> Self {
        self.nodes.push(Node::Loop(node));
        self
    }

    /// Unconditional control connector.
    pub fn connector(mut self, from: &str, to: &str) -> Self {
        self.connectors.push(ControlConnector {
            from: Ident::new(from),
            to: Ident::new(to),
            condition: Condition::True,
        });
        self
    }

    /// Conditional control connector (transition condition over the
    /// source's output container).
    pub fn connector_if(mut self, from: &str, to: &str, condition: Condition) -> Self {
        self.connectors.push(ControlConnector {
            from: Ident::new(from),
            to: Ident::new(to),
            condition,
        });
        self
    }

    /// Chain `names` sequentially with unconditional connectors.
    pub fn sequence(mut self, names: &[&str]) -> Self {
        for pair in names.windows(2) {
            self = self.connector(pair[0], pair[1]);
        }
        self
    }

    /// The process yields the whole result table of `node`.
    pub fn output_table(mut self, node: &str) -> Self {
        self.output = Some(OutputSource::NodeTable(Ident::new(node)));
        self
    }

    /// The process yields one row assembled from bindings.
    pub fn output_row(mut self, fields: &[(&str, DataType, DataSource)]) -> Self {
        self.output = Some(OutputSource::Row(
            fields
                .iter()
                .map(|(n, t, s)| (Ident::new(*n), *t, s.clone()))
                .collect(),
        ));
        self
    }

    /// Validate everything and produce the immutable model.
    pub fn build(self) -> FedResult<ProcessModel> {
        let output = self.output.ok_or_else(|| {
            FedError::workflow(format!("process {}: no output declared", self.name))
        })?;
        let mut model = ProcessModel {
            name: self.name,
            input: self.input,
            nodes: self.nodes,
            connectors: self.connectors,
            output,
        };
        resolve_join_schemas(&mut model)?;
        validate(&model)?;
        Ok(model)
    }
}

/// Fill in the output schemas of Join helpers from their source nodes.
fn resolve_join_schemas(model: &mut ProcessModel) -> FedResult<()> {
    let schemas: HashMap<Ident, ContainerSchema> = model
        .nodes
        .iter()
        .map(|n| (n.name().clone(), n.output_schema()))
        .collect();
    for node in &mut model.nodes {
        let Node::Activity(a) = node else { continue };
        let ActivityKind::Helper(HelperOp::Join {
            left,
            right,
            project,
            ..
        }) = &a.kind
        else {
            continue;
        };
        let left_schema = schemas.get(left).ok_or_else(|| {
            FedError::workflow(format!("join {}: unknown left node {left}", a.name))
        })?;
        let right_schema = schemas.get(right).ok_or_else(|| {
            FedError::workflow(format!("join {}: unknown right node {right}", a.name))
        })?;
        let mut fields = Vec::new();
        for (from_left, src, out) in project {
            let side = if *from_left {
                left_schema
            } else {
                right_schema
            };
            let dt = side.field_type(src).ok_or_else(|| {
                FedError::workflow(format!(
                    "join {}: projected column {src} not in {} side",
                    a.name,
                    if *from_left { "left" } else { "right" }
                ))
            })?;
            fields.push((out.as_str().to_string(), dt));
        }
        let spec: Vec<(&str, DataType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        a.output = ContainerSchema::new(&spec);
    }
    Ok(())
}

/// Transitive control predecessors of every node.
fn ancestors(model: &ProcessModel) -> HashMap<Ident, HashSet<Ident>> {
    let mut out: HashMap<Ident, HashSet<Ident>> = HashMap::new();
    // Iterate to a fixed point; graphs are small.
    let mut changed = true;
    while changed {
        changed = false;
        for c in &model.connectors {
            let from_set: HashSet<Ident> = out.get(&c.from).cloned().unwrap_or_default();
            let entry = out.entry(c.to.clone()).or_default();
            let before = entry.len();
            entry.insert(c.from.clone());
            entry.extend(from_set);
            if entry.len() != before {
                changed = true;
            }
        }
    }
    out
}

/// Full structural validation of a process model.
pub fn validate(model: &ProcessModel) -> FedResult<()> {
    let err = |msg: String| Err(FedError::workflow(format!("process {}: {msg}", model.name)));

    // Unique node names.
    let mut seen = HashSet::new();
    for node in &model.nodes {
        if !seen.insert(node.name().clone()) {
            return err(format!("duplicate node name {}", node.name()));
        }
    }

    // Connectors reference nodes; no self-edges; conditions well-formed.
    for c in &model.connectors {
        let from = model
            .node(&c.from)
            .ok_or_else(|| FedError::workflow(format!("connector from unknown node {}", c.from)))?;
        if model.node(&c.to).is_none() {
            return err(format!("connector to unknown node {}", c.to));
        }
        if c.from == c.to {
            return err(format!("self-connector on {}", c.from));
        }
        let from_schema = from.output_schema();
        for field in c.condition.referenced_fields() {
            if !from_schema.has_field(field) {
                return err(format!(
                    "transition condition on {}->{} references field {field} missing from {}'s output",
                    c.from, c.to, c.from
                ));
            }
        }
    }

    // Acyclic.
    model.topo_order()?;

    let anc = ancestors(model);

    // Validate a data source used by `consumer` (None = process output).
    let check_source = |source: &DataSource, consumer: Option<&Ident>| -> FedResult<()> {
        match source {
            DataSource::Constant(_) => Ok(()),
            DataSource::ProcessInput(f) => {
                if model.input.has_field(f) {
                    Ok(())
                } else {
                    Err(FedError::workflow(format!(
                        "process {}: data source references unknown process input {f}",
                        model.name
                    )))
                }
            }
            DataSource::ActivityOutput { activity, field } => {
                let node = model.node(activity).ok_or_else(|| {
                    FedError::workflow(format!(
                        "process {}: data source references unknown node {activity}",
                        model.name
                    ))
                })?;
                if !node.output_schema().has_field(field) {
                    return Err(FedError::workflow(format!(
                        "process {}: node {activity} has no output field {field}",
                        model.name
                    )));
                }
                if let Some(consumer) = consumer {
                    let is_ancestor = anc
                        .get(consumer)
                        .map(|s| s.contains(activity))
                        .unwrap_or(false);
                    if !is_ancestor {
                        return Err(FedError::workflow(format!(
                            "process {}: {consumer} reads output of {activity} without a control path from it — the data connector must parallel the control flow",
                            model.name
                        )));
                    }
                }
                Ok(())
            }
        }
    };

    for node in &model.nodes {
        match node {
            Node::Activity(a) => match &a.kind {
                ActivityKind::Program { inputs, .. } => {
                    for b in inputs {
                        check_source(&b.source, Some(&a.name))?;
                    }
                }
                ActivityKind::Helper(h) => match h {
                    HelperOp::Cast { input, .. } => check_source(input, Some(&a.name))?,
                    HelperOp::Const { .. } => {}
                    HelperOp::Add { left, right, .. } => {
                        check_source(left, Some(&a.name))?;
                        check_source(right, Some(&a.name))?;
                    }
                    HelperOp::Join {
                        left,
                        right,
                        left_on,
                        right_on,
                        ..
                    } => {
                        for (side, on) in [(left, left_on), (right, right_on)] {
                            check_source(
                                &DataSource::ActivityOutput {
                                    activity: side.clone(),
                                    field: on.clone(),
                                },
                                Some(&a.name),
                            )?;
                        }
                    }
                },
            },
            Node::Loop(l) => {
                if l.max_iterations == 0 {
                    return err(format!("loop {}: max_iterations must be >= 1", l.name));
                }
                if l.body.input != l.vars {
                    return err(format!(
                        "loop {}: body input schema must equal the loop variables",
                        l.name
                    ));
                }
                for b in &l.init {
                    if !l.vars.has_field(&b.target) {
                        return err(format!(
                            "loop {}: init binds unknown variable {}",
                            l.name, b.target
                        ));
                    }
                    check_source(&b.source, Some(&l.name))?;
                }
                let body_out = l.body.output_schema();
                for (var, from) in &l.update {
                    if !l.vars.has_field(var) {
                        return err(format!("loop {}: update of unknown variable {var}", l.name));
                    }
                    if !body_out.has_field(from) {
                        return err(format!(
                            "loop {}: update reads unknown body output field {from}",
                            l.name
                        ));
                    }
                }
                for f in l.until.referenced_fields() {
                    if !l.vars.has_field(f) {
                        return err(format!(
                            "loop {}: until-condition references unknown variable {f}",
                            l.name
                        ));
                    }
                }
                if let Some((var, _)) = &l.counter {
                    if !l.vars.has_field(var) {
                        return err(format!(
                            "loop {}: counter over unknown variable {var}",
                            l.name
                        ));
                    }
                }
                // The body is a process model in its own right.
                validate(&l.body)?;
            }
        }
    }

    // Output.
    match &model.output {
        OutputSource::NodeTable(name) => {
            if model.node(name).is_none() {
                return err(format!("output references unknown node {name}"));
            }
        }
        OutputSource::Row(fields) => {
            let mut names = HashSet::new();
            for (n, _, s) in fields {
                if !names.insert(n.clone()) {
                    return err(format!("duplicate output field {n}"));
                }
                check_source(s, None)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CondOp;

    fn linear_two() -> ProcessBuilder {
        // GetSupplierNo -> GetQuality, the paper's linear-dependency case.
        ProcessBuilder::new("GetSuppQual")
            .input(&[("SupplierName", DataType::Varchar)])
            .program(
                "GetSupplierNo",
                "GetSupplierNo",
                vec![DataBinding::new(
                    "SupplierName",
                    DataSource::input("SupplierName"),
                )],
                &[("SupplierNo", DataType::Int)],
            )
            .program(
                "GetQuality",
                "GetQuality",
                vec![DataBinding::new(
                    "SupplierNo",
                    DataSource::output("GetSupplierNo", "SupplierNo"),
                )],
                &[("Qual", DataType::Int)],
            )
            .sequence(&["GetSupplierNo", "GetQuality"])
            .output_table("GetQuality")
    }

    #[test]
    fn valid_linear_process_builds() {
        let p = linear_two().build().unwrap();
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.program_activity_count(), 2);
    }

    #[test]
    fn missing_output_is_rejected() {
        let b = ProcessBuilder::new("p").constant("c", 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let b = ProcessBuilder::new("p")
            .constant("c", 1)
            .constant("c", 2)
            .output_table("c");
        assert!(b.build().is_err());
    }

    #[test]
    fn data_connector_must_parallel_control_flow() {
        // GetQuality reads GetSupplierNo's output but there is no control
        // connector between them — must be rejected.
        let b = ProcessBuilder::new("broken")
            .input(&[("SupplierName", DataType::Varchar)])
            .program(
                "GetSupplierNo",
                "GetSupplierNo",
                vec![DataBinding::new(
                    "SupplierName",
                    DataSource::input("SupplierName"),
                )],
                &[("SupplierNo", DataType::Int)],
            )
            .program(
                "GetQuality",
                "GetQuality",
                vec![DataBinding::new(
                    "SupplierNo",
                    DataSource::output("GetSupplierNo", "SupplierNo"),
                )],
                &[("Qual", DataType::Int)],
            )
            .output_table("GetQuality");
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("control path"));
    }

    #[test]
    fn cycle_rejected() {
        let b = ProcessBuilder::new("p")
            .constant("a", 1)
            .constant("b", 2)
            .connector("a", "b")
            .connector("b", "a")
            .output_table("b");
        assert!(b.build().unwrap_err().to_string().contains("cycle"));
    }

    #[test]
    fn condition_fields_checked_against_source_schema() {
        let b = ProcessBuilder::new("p")
            .constant("a", 1)
            .constant("b", 2)
            .connector_if("a", "b", Condition::cmp("missing", CondOp::Eq, 1))
            .output_table("b");
        assert!(b.build().unwrap_err().to_string().contains("missing"));
    }

    #[test]
    fn join_schema_resolved_from_sides() {
        let p = ProcessBuilder::new("GetSubCompDiscounts")
            .input(&[("CompNo", DataType::Int), ("Discount", DataType::Int)])
            .program(
                "GetSubCompNo",
                "GetSubCompNo",
                vec![DataBinding::new("CompNo", DataSource::input("CompNo"))],
                &[("SubCompNo", DataType::Int)],
            )
            .program(
                "GetCompSupp4Discount",
                "GetCompSupp4Discount",
                vec![DataBinding::new("Discount", DataSource::input("Discount"))],
                &[("CompNo", DataType::Int), ("SupplierNo", DataType::Int)],
            )
            .join(
                "Compose",
                "GetSubCompNo",
                "GetCompSupp4Discount",
                "SubCompNo",
                "CompNo",
                &[
                    (true, "SubCompNo", "SubCompNo"),
                    (false, "SupplierNo", "SupplierNo"),
                ],
            )
            .connector("GetSubCompNo", "Compose")
            .connector("GetCompSupp4Discount", "Compose")
            .output_table("Compose")
            .build()
            .unwrap();
        let out = p.output_schema();
        assert_eq!(
            out.field_type(&Ident::new("SupplierNo")),
            Some(DataType::Int)
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_with_unknown_projection_rejected() {
        let b = ProcessBuilder::new("p")
            .constant("l", 1)
            .constant("r", 2)
            .join("j", "l", "r", "value", "value", &[(true, "nope", "x")])
            .connector("l", "j")
            .connector("r", "j")
            .output_table("j");
        assert!(b.build().is_err());
    }

    #[test]
    fn unknown_process_input_rejected() {
        let b = ProcessBuilder::new("p")
            .program(
                "a",
                "F",
                vec![DataBinding::new("x", DataSource::input("missing"))],
                &[("y", DataType::Int)],
            )
            .output_table("a");
        assert!(b.build().is_err());
    }

    #[test]
    fn output_row_with_duplicate_fields_rejected() {
        let b = ProcessBuilder::new("p").constant("a", 1).output_row(&[
            ("x", DataType::Int, DataSource::constant(1)),
            ("x", DataType::Int, DataSource::constant(2)),
        ]);
        assert!(b.build().is_err());
    }

    #[test]
    fn retry_policy_attaches_to_last_activity() {
        let p = ProcessBuilder::new("p")
            .program("a", "F", vec![], &[("y", DataType::Int)])
            .with_retry(3)
            .output_table("a")
            .build()
            .unwrap();
        let Node::Activity(a) = &p.nodes[0] else {
            panic!()
        };
        assert_eq!(a.retry.max_attempts, 3);
    }
}
