//! The audit trail: every state transition of a process instance, stamped
//! with virtual time.

use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    ProcessStarted,
    ActivityStarted,
    /// Completed with the given result row count.
    ActivityCompleted {
        rows: usize,
    },
    /// Dead-path eliminated (an incoming transition condition was false or
    /// a predecessor was itself skipped).
    ActivitySkipped,
    /// One attempt failed; `attempt` is 1-based.
    ActivityFailed {
        attempt: u32,
        error: String,
    },
    /// A loop body finished its `iteration`-th run (1-based).
    LoopIteration {
        iteration: usize,
    },
    ProcessCompleted,
    ProcessFailed {
        error: String,
    },
}

/// One audit record.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    pub at_us: u64,
    /// Node name, or the process name for process-level events.
    pub node: String,
    pub event: AuditEvent,
}

/// The ordered audit trail of one process instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditTrail {
    records: Vec<AuditRecord>,
}

impl AuditTrail {
    pub fn new() -> AuditTrail {
        AuditTrail::default()
    }

    pub fn record(&mut self, at_us: u64, node: impl Into<String>, event: AuditEvent) {
        self.records.push(AuditRecord {
            at_us,
            node: node.into(),
            event,
        });
    }

    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Records for one node.
    pub fn for_node(&self, node: &str) -> Vec<&AuditRecord> {
        self.records.iter().filter(|r| r.node == node).collect()
    }

    /// Count of records matching a predicate on the event.
    pub fn count_events(&self, pred: impl Fn(&AuditEvent) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }

    /// Merge another trail (e.g. a loop body's) into this one.
    pub fn extend(&mut self, other: AuditTrail) {
        self.records.extend(other.records);
    }
}

impl fmt::Display for AuditTrail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(f, "[{:>10}us] {:<24} {:?}", r.at_us, r.node, r.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_in_order() {
        let mut t = AuditTrail::new();
        t.record(0, "p", AuditEvent::ProcessStarted);
        t.record(10, "a", AuditEvent::ActivityStarted);
        t.record(60, "a", AuditEvent::ActivityCompleted { rows: 1 });
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.for_node("a").len(), 2);
        assert_eq!(
            t.count_events(|e| matches!(e, AuditEvent::ActivityCompleted { .. })),
            1
        );
    }

    #[test]
    fn display_renders_each_record() {
        let mut t = AuditTrail::new();
        t.record(5, "GetQuality", AuditEvent::ActivityStarted);
        let s = t.to_string();
        assert!(s.contains("GetQuality"));
        assert!(s.contains("5us"));
    }

    #[test]
    fn extend_merges() {
        let mut a = AuditTrail::new();
        a.record(0, "x", AuditEvent::ProcessStarted);
        let mut b = AuditTrail::new();
        b.record(1, "y", AuditEvent::ProcessCompleted);
        a.extend(b);
        assert_eq!(a.records().len(), 2);
    }
}
