//! The runtime engine (navigator).
//!
//! The navigator executes a validated [`ProcessModel`]: it schedules every
//! node at the *maximum virtual completion time of its predecessors*, so
//! mutually unordered activities overlap in virtual time — the fork/join
//! behaviour behind the paper's observation that the WfMS runs parallel
//! activities more efficiently than the UDTF approach. Two navigators are
//! provided with identical semantics and identical virtual-time accounting:
//! a sequential one and a multi-threaded one (scoped worker threads per
//! fork level).

use std::collections::HashMap;

use fedwf_sim::{Component, CostModel, Meter, SpanNameCache, TraceDetail};
use fedwf_types::{
    cast_value, implicit_cast, FedError, FedResult, Ident, ResultExt, Row, Table, Value,
};

use crate::audit::{AuditEvent, AuditTrail};
use crate::container::{Container, ContainerSchema};
use crate::model::{
    Activity, ActivityKind, DataSource, HelperOp, LoopNode, Node, OutputSource, ProcessModel,
};

/// Executes external programs (local functions of application systems) on
/// behalf of program activities. Implementations must not book costs — the
/// engine accounts for activity and local-function time itself.
pub trait ProgramExecutor: Send + Sync {
    fn execute(&self, function: &str, args: &[Value]) -> FedResult<Table>;
}

/// A closure-map executor, convenient for tests and examples.
/// A registered test program body.
type TestProgram = Box<dyn Fn(&[Value]) -> FedResult<Table> + Send + Sync>;

#[derive(Default)]
pub struct EchoExecutor {
    functions: HashMap<String, TestProgram>,
}

impl EchoExecutor {
    pub fn new() -> EchoExecutor {
        EchoExecutor::default()
    }

    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> FedResult<Table> + Send + Sync + 'static,
    ) {
        self.functions.insert(name.to_lowercase(), Box::new(f));
    }
}

impl ProgramExecutor for EchoExecutor {
    fn execute(&self, function: &str, args: &[Value]) -> FedResult<Table> {
        match self.functions.get(&function.to_lowercase()) {
            Some(f) => f(args),
            None => Err(FedError::workflow(format!(
                "executor has no program {function}"
            ))),
        }
    }
}

/// The result of one process instance.
#[derive(Debug, Clone)]
pub struct ProcessInstance {
    pub output: Table,
    pub audit: AuditTrail,
    pub started_us: u64,
    pub finished_us: u64,
}

impl ProcessInstance {
    pub fn elapsed_us(&self) -> u64 {
        self.finished_us - self.started_us
    }
}

/// How a finished node left the stage.
#[derive(Debug, Clone)]
enum NodeState {
    Done { table: Table, end_us: u64 },
    Skipped { end_us: u64 },
}

impl NodeState {
    fn end_us(&self) -> u64 {
        match self {
            NodeState::Done { end_us, .. } | NodeState::Skipped { end_us } => *end_us,
        }
    }
}

/// The workflow engine.
pub struct Engine {
    cost: CostModel,
    /// Interned span names (`wfms.process P`, `activity A`, `local F`) —
    /// formatted once per deployment, not once per traced span.
    process_spans: SpanNameCache<String>,
    activity_spans: SpanNameCache<Ident>,
    local_spans: SpanNameCache<String>,
}

impl Engine {
    pub fn new(cost: CostModel) -> Engine {
        Engine {
            cost,
            process_spans: SpanNameCache::new(),
            activity_spans: SpanNameCache::new(),
            local_spans: SpanNameCache::new(),
        }
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Run a process instance with the sequential navigator.
    pub fn run(
        &self,
        process: &ProcessModel,
        input: &Container,
        executor: &dyn ProgramExecutor,
        meter: &mut Meter,
    ) -> FedResult<ProcessInstance> {
        self.run_inner(process, input, executor, meter, false)
    }

    /// Run a process instance with the multi-threaded navigator. Results
    /// and virtual-time accounting are identical to [`Engine::run`].
    pub fn run_threaded(
        &self,
        process: &ProcessModel,
        input: &Container,
        executor: &dyn ProgramExecutor,
        meter: &mut Meter,
    ) -> FedResult<ProcessInstance> {
        self.run_inner(process, input, executor, meter, true)
    }

    fn run_inner(
        &self,
        process: &ProcessModel,
        input: &Container,
        executor: &dyn ProgramExecutor,
        meter: &mut Meter,
        threaded: bool,
    ) -> FedResult<ProcessInstance> {
        if !meter.tracing() {
            return self.run_inner_body(process, input, executor, meter, threaded);
        }
        let span = self
            .process_spans
            .get(process.name.as_str(), str::to_owned, || {
                format!("wfms.process {}", process.name)
            });
        meter.span_start(Component::WfEngine, span);
        let result = self.run_inner_body(process, input, executor, meter, threaded);
        meter.span_end();
        result
    }

    fn run_inner_body(
        &self,
        process: &ProcessModel,
        input: &Container,
        executor: &dyn ProgramExecutor,
        meter: &mut Meter,
        threaded: bool,
    ) -> FedResult<ProcessInstance> {
        if input.schema() != &process.input {
            return Err(FedError::workflow(format!(
                "process {} input container does not match the declared schema",
                process.name
            )));
        }
        let started_us = meter.now_us();
        let mut audit = AuditTrail::new();
        audit.record(started_us, process.name.clone(), AuditEvent::ProcessStarted);

        let order = process.topo_order()?;
        let mut states: HashMap<Ident, NodeState> = HashMap::new();
        let mut node_meters: Vec<Meter> = Vec::new();
        let tracing = meter
            .tracing()
            .then(|| (meter.wall_sampling(), meter.trace_detail()));

        if threaded {
            // Group nodes into fork levels: a node's level is one past the
            // maximum level of its predecessors. All nodes of a level are
            // mutually unordered and run on worker threads.
            let mut level_of: HashMap<Ident, usize> = HashMap::new();
            let mut levels: Vec<Vec<&Ident>> = Vec::new();
            for name in &order {
                let lvl = process
                    .predecessors(name)
                    .iter()
                    .map(|p| level_of[*p] + 1)
                    .max()
                    .unwrap_or(0);
                level_of.insert((*name).clone(), lvl);
                if levels.len() <= lvl {
                    levels.resize_with(lvl + 1, Vec::new);
                }
                levels[lvl].push(*name);
            }
            for level in levels {
                let results: Vec<FedResult<(Ident, NodeState, Meter, AuditTrail)>> =
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = level
                            .iter()
                            .map(|name| {
                                let states = &states;
                                scope.spawn(move || {
                                    self.exec_node(
                                        process, name, states, input, executor, started_us,
                                        threaded, tracing,
                                    )
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("navigator worker panicked"))
                            .collect()
                    });
                for r in results {
                    let (name, state, node_meter, node_audit) =
                        r.map_err(|e| self.fail(&mut audit, process, meter, e))?;
                    audit.extend(node_audit);
                    states.insert(name, state);
                    node_meters.push(node_meter);
                }
            }
        } else {
            for name in &order {
                let r = self.exec_node(
                    process, name, &states, input, executor, started_us, threaded, tracing,
                );
                let (name, state, node_meter, node_audit) =
                    r.map_err(|e| self.fail(&mut audit, process, meter, e))?;
                audit.extend(node_audit);
                states.insert(name, state);
                node_meters.push(node_meter);
            }
        }

        meter.join(node_meters);

        // Assemble the process output.
        let output = match &process.output {
            OutputSource::NodeTable(name) => match states.get(name) {
                Some(NodeState::Done { table, .. }) => table.clone(),
                _ => Table::new(process.output_table_schema()),
            },
            OutputSource::Row(fields) => {
                let schema = process.output_table_schema();
                let mut values = Vec::with_capacity(fields.len());
                for (fname, dt, source) in fields {
                    let v = resolve_source(source, input, &states, &process.name)?;
                    let v = implicit_cast(&v, *dt).map_err(|e| {
                        FedError::workflow(format!(
                            "process {} output field {fname}: {e}",
                            process.name
                        ))
                    })?;
                    values.push(v);
                }
                let mut t = Table::new(schema);
                t.push_unchecked(Row::new(values));
                t
            }
        };

        audit.record(
            meter.now_us(),
            process.name.clone(),
            AuditEvent::ProcessCompleted,
        );
        Ok(ProcessInstance {
            output,
            audit,
            started_us,
            finished_us: meter.now_us(),
        })
    }

    fn fail(
        &self,
        audit: &mut AuditTrail,
        process: &ProcessModel,
        meter: &Meter,
        e: FedError,
    ) -> FedError {
        audit.record(
            meter.now_us(),
            process.name.clone(),
            AuditEvent::ProcessFailed {
                error: e.to_string(),
            },
        );
        e.with_context(format!("running workflow process {}", process.name))
    }

    /// Execute one node. Returns its name, final state, branch meter and
    /// branch-local audit records.
    #[allow(clippy::too_many_arguments)]
    fn exec_node(
        &self,
        process: &ProcessModel,
        name: &Ident,
        states: &HashMap<Ident, NodeState>,
        input: &Container,
        executor: &dyn ProgramExecutor,
        base_us: u64,
        threaded: bool,
        tracing: Option<(bool, TraceDetail)>,
    ) -> FedResult<(Ident, NodeState, Meter, AuditTrail)> {
        let node = process.node(name).expect("topo order lists known nodes");
        let mut audit = AuditTrail::new();

        // Start when the last predecessor finished.
        let start_us = process
            .predecessors(name)
            .iter()
            .map(|p| states[*p].end_us())
            .max()
            .unwrap_or(base_us);
        let mut node_meter = Meter::starting_at(start_us);
        if let Some((wall, TraceDetail::Full)) = tracing {
            // Node meters are fresh (not forks), so tracing is opted into
            // explicitly; the node span is reparented under the process
            // span when the navigator joins the branch meters. At coarse
            // detail the branch runs *untraced* — no span buffer, no
            // activity span — and `Meter::join` books its charges into the
            // process span instead.
            node_meter.set_tracing(true);
            node_meter.set_wall_sampling(wall);
            node_meter.span_start(
                Component::Activity,
                self.activity_spans
                    .get(name, Ident::clone, || format!("activity {name}")),
            );
        }

        // Start condition: every incoming connector must have a completed
        // source and a true transition condition (dead-path elimination).
        let mut runnable = true;
        for conn in process.connectors.iter().filter(|c| &c.to == name) {
            match states.get(&conn.from) {
                Some(NodeState::Done { table, .. }) => {
                    if conn.condition != crate::condition::Condition::True {
                        node_meter.charge(
                            Component::WfEngine,
                            "Evaluate transition condition",
                            self.cost.wf_condition_eval,
                        );
                        let from_node = process.node(&conn.from).expect("validated connector");
                        let view = first_row_container(&from_node.output_schema(), table);
                        if !conn.condition.evaluate(&view)? {
                            runnable = false;
                        }
                    }
                }
                _ => {
                    runnable = false;
                }
            }
        }
        if !runnable {
            audit.record(
                node_meter.now_us(),
                name.to_string(),
                AuditEvent::ActivitySkipped,
            );
            let end_us = node_meter.now_us();
            node_meter.span_end();
            return Ok((
                name.clone(),
                NodeState::Skipped { end_us },
                node_meter,
                audit,
            ));
        }

        node_meter.charge(
            Component::WfEngine,
            "Workflow navigation",
            self.cost.wf_navigation,
        );
        audit.record(
            node_meter.now_us(),
            name.to_string(),
            AuditEvent::ActivityStarted,
        );

        let table = match node {
            Node::Activity(a) => self.exec_activity(
                a,
                process,
                states,
                input,
                executor,
                &mut node_meter,
                &mut audit,
            )?,
            Node::Loop(l) => self.exec_loop(
                l,
                process,
                states,
                input,
                executor,
                &mut node_meter,
                &mut audit,
                threaded,
            )?,
        };

        audit.record(
            node_meter.now_us(),
            name.to_string(),
            AuditEvent::ActivityCompleted {
                rows: table.row_count(),
            },
        );
        let end_us = node_meter.now_us();
        node_meter.span_counter("rows", table.row_count() as u64);
        node_meter.span_end();
        Ok((
            name.clone(),
            NodeState::Done { table, end_us },
            node_meter,
            audit,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_activity(
        &self,
        activity: &Activity,
        process: &ProcessModel,
        states: &HashMap<Ident, NodeState>,
        input: &Container,
        executor: &dyn ProgramExecutor,
        meter: &mut Meter,
        audit: &mut AuditTrail,
    ) -> FedResult<Table> {
        match &activity.kind {
            ActivityKind::Program { function, inputs } => {
                let mut args = Vec::with_capacity(inputs.len());
                for b in inputs {
                    args.push(resolve_source(&b.source, input, states, &process.name)?);
                }
                let mut attempt = 0;
                loop {
                    attempt += 1;
                    // Every attempt boots a fresh Java program for the
                    // activity implementation and marshals its containers.
                    meter.charge(
                        Component::Activity,
                        "Process activities",
                        self.cost.wf_activity_program_start,
                    );
                    meter.charge(
                        Component::Activity,
                        "Process activities",
                        self.cost.wf_activity_container,
                    );
                    let span = meter.fine_tracing();
                    if span {
                        meter.span_start(
                            Component::LocalFunction,
                            self.local_spans.get(function.as_str(), str::to_owned, || {
                                format!("local {function}")
                            }),
                        );
                    }
                    match executor.execute(function, &args) {
                        Ok(table) => {
                            check_output_schema(&activity.output, &table, &activity.name)?;
                            meter.charge(
                                Component::LocalFunction,
                                "Process activities",
                                self.cost.local_function_cost(table.row_count()),
                            );
                            if span {
                                meter.span_counter("rows", table.row_count() as u64);
                                meter.span_end();
                            }
                            return Ok(table);
                        }
                        Err(e) => {
                            if span {
                                meter.span_end();
                            }
                            audit.record(
                                meter.now_us(),
                                activity.name.to_string(),
                                AuditEvent::ActivityFailed {
                                    attempt,
                                    error: e.to_string(),
                                },
                            );
                            if attempt >= activity.retry.max_attempts {
                                return Err(e.with_context(format!(
                                    "activity {} failed after {attempt} attempt(s)",
                                    activity.name
                                )));
                            }
                        }
                    }
                }
            }
            ActivityKind::Helper(op) => {
                meter.charge(
                    Component::Activity,
                    "Helper activity",
                    self.cost.wf_helper_activity,
                );
                self.exec_helper(op, &activity.output, process, states, input, meter)
            }
        }
    }

    fn exec_helper(
        &self,
        op: &HelperOp,
        output: &ContainerSchema,
        process: &ProcessModel,
        states: &HashMap<Ident, NodeState>,
        input: &Container,
        meter: &mut Meter,
    ) -> FedResult<Table> {
        let single = |value: Value| -> FedResult<Table> {
            let schema = schema_of(output);
            let mut t = Table::new(schema);
            t.push(Row::new(vec![value]))?;
            Ok(t)
        };
        match op {
            HelperOp::Const { value, .. } => single(value.clone()),
            HelperOp::Cast { input: src, to, .. } => {
                let v = resolve_source(src, input, states, &process.name)?;
                single(cast_value(&v, *to)?)
            }
            HelperOp::Add { left, right, .. } => {
                let l = resolve_source(left, input, states, &process.name)?;
                let r = resolve_source(right, input, states, &process.name)?;
                let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) else {
                    return Err(FedError::workflow(
                        "Add helper requires non-null integer operands",
                    ));
                };
                let sum = a
                    .checked_add(b)
                    .ok_or_else(|| FedError::workflow("Add helper overflowed"))?;
                single(cast_value(&Value::BigInt(sum), fedwf_types::DataType::Int)?)
            }
            HelperOp::Join {
                left,
                right,
                left_on,
                right_on,
                project,
            } => {
                let left_table = done_table(states, left)?;
                let right_table = done_table(states, right)?;
                let left_schema = process.node(left).expect("validated").output_schema();
                let right_schema = process.node(right).expect("validated").output_schema();
                let li = field_index(&left_schema, left_on);
                let ri = field_index(&right_schema, right_on);
                // Composing two result sets costs work proportional to the
                // examined row pairs.
                meter.charge(
                    Component::Activity,
                    "Helper activity",
                    self.cost.wf_helper_per_row
                        * (left_table.row_count() * right_table.row_count()) as u64,
                );
                let schema = schema_of(output);
                let mut out = Table::new(schema);
                for lrow in left_table.rows() {
                    for rrow in right_table.rows() {
                        if lrow.values()[li].sql_eq(&rrow.values()[ri]) == Some(true) {
                            let mut values = Vec::with_capacity(project.len());
                            for (from_left, src, _) in project {
                                let (row, schema) = if *from_left {
                                    (lrow, &left_schema)
                                } else {
                                    (rrow, &right_schema)
                                };
                                values.push(row.values()[field_index(schema, src)].clone());
                            }
                            out.push_unchecked(Row::new(values));
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_loop(
        &self,
        l: &LoopNode,
        process: &ProcessModel,
        states: &HashMap<Ident, NodeState>,
        input: &Container,
        executor: &dyn ProgramExecutor,
        meter: &mut Meter,
        audit: &mut AuditTrail,
        threaded: bool,
    ) -> FedResult<Table> {
        // Initialize the loop variables.
        let mut vars = l.vars.instantiate();
        for b in &l.init {
            let v = resolve_source(&b.source, input, states, &process.name)?;
            vars.set(&b.target, v)
                .context(format!("initializing loop {}", l.name))?;
        }

        let body_schema = l.body.output_schema();
        let mut accumulated = Table::new(schema_of(&l.body.output_schema()));
        let mut iteration = 0;
        loop {
            iteration += 1;
            if iteration > l.max_iterations {
                return Err(FedError::workflow(format!(
                    "loop {} exceeded max_iterations = {}",
                    l.name, l.max_iterations
                )));
            }
            meter.charge(
                Component::WfEngine,
                "Start sub-workflow",
                self.cost.wf_subworkflow_start,
            );
            let instance = self.run_inner(&l.body, &vars, executor, meter, threaded)?;
            audit.extend(instance.audit);
            if l.accumulate {
                for row in instance.output.rows() {
                    accumulated.push_unchecked(row.clone());
                }
            }
            // Update the loop variables from the body output's first row.
            if !l.update.is_empty() {
                let view = first_row_container(&body_schema, &instance.output);
                for (var, from) in &l.update {
                    vars.set(var, view.get(from)?)
                        .context(format!("updating loop {}", l.name))?;
                }
            }
            // Built-in counter increment.
            if let Some((var, step)) = &l.counter {
                let current = vars.get(var)?.as_i64().ok_or_else(|| {
                    FedError::workflow(format!("loop {}: counter {var} is not an integer", l.name))
                })?;
                let next = Value::BigInt(current + step);
                let declared = l.vars.field_type(var).expect("validated counter variable");
                vars.set(var, fedwf_types::cast_value(&next, declared)?)
                    .context(format!("incrementing loop counter in {}", l.name))?;
            }
            audit.record(
                meter.now_us(),
                l.name.to_string(),
                AuditEvent::LoopIteration { iteration },
            );
            meter.charge(
                Component::WfEngine,
                "Evaluate transition condition",
                self.cost.wf_condition_eval,
            );
            if l.until.evaluate(&vars)? {
                break;
            }
        }

        if l.accumulate {
            Ok(accumulated)
        } else {
            let mut t = Table::new(schema_of(&l.vars));
            t.push_unchecked(Row::new(vars.values_in_order()));
            Ok(t)
        }
    }
}

// ---- small helpers -------------------------------------------------------

fn schema_of(cs: &ContainerSchema) -> fedwf_types::SchemaRef {
    std::sync::Arc::new(fedwf_types::Schema::of(
        &cs.fields()
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    ))
}

fn field_index(schema: &ContainerSchema, name: &Ident) -> usize {
    schema
        .fields()
        .iter()
        .position(|(n, _)| n == name)
        .expect("validated field")
}

/// View the first row of a table as a container (missing/short = NULLs).
fn first_row_container(schema: &ContainerSchema, table: &Table) -> Container {
    let mut c = schema.instantiate();
    if let Some(row) = table.rows().first() {
        for (i, (name, _)) in schema.fields().iter().enumerate() {
            if let Some(v) = row.get(i) {
                // Values in the table already satisfy the schema's types.
                let _ = c.set(name, v.clone());
            }
        }
    }
    c
}

fn done_table<'a>(states: &'a HashMap<Ident, NodeState>, name: &Ident) -> FedResult<&'a Table> {
    match states.get(name) {
        Some(NodeState::Done { table, .. }) => Ok(table),
        _ => Err(FedError::workflow(format!(
            "node {name} produced no result (skipped or not yet run)"
        ))),
    }
}

fn resolve_source(
    source: &DataSource,
    input: &Container,
    states: &HashMap<Ident, NodeState>,
    process: &str,
) -> FedResult<Value> {
    match source {
        DataSource::Constant(v) => Ok(v.clone()),
        DataSource::ProcessInput(f) => input.get(f),
        DataSource::ActivityOutput { activity, field } => match states.get(activity) {
            Some(NodeState::Done { table, .. }) => {
                let idx = table.schema().index_of(field).ok_or_else(|| {
                    FedError::workflow(format!(
                        "process {process}: node {activity} output has no column {field}"
                    ))
                })?;
                match table.rows().first() {
                    Some(row) => Ok(row.values()[idx].clone()),
                    None => Err(FedError::workflow(format!(
                        "process {process}: node {activity} returned no row for {field}"
                    ))),
                }
            }
            Some(NodeState::Skipped { .. }) => Ok(Value::Null),
            None => Err(FedError::workflow(format!(
                "process {process}: node {activity} has not produced output yet"
            ))),
        },
    }
}

fn check_output_schema(
    declared: &ContainerSchema,
    table: &Table,
    activity: &Ident,
) -> FedResult<()> {
    let actual = table.schema();
    if actual.len() != declared.len() {
        return Err(FedError::workflow(format!(
            "activity {activity}: program returned {} columns, declared {}",
            actual.len(),
            declared.len()
        )));
    }
    for (col, (dname, dtype)) in actual.columns().iter().zip(declared.fields()) {
        if &col.name != dname || col.data_type != *dtype {
            return Err(FedError::workflow(format!(
                "activity {activity}: program output column {} {} does not match declared {dname} {dtype}",
                col.name, col.data_type
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::condition::{CondOp, Condition};
    use crate::model::DataBinding;
    use fedwf_types::DataType;

    fn executor() -> EchoExecutor {
        let mut ex = EchoExecutor::new();
        ex.register("GetSupplierNo", |args| {
            assert_eq!(args.len(), 1);
            Ok(Table::scalar("SupplierNo", Value::Int(1234)))
        });
        ex.register("GetQuality", |args| {
            let n = args[0].as_i64().unwrap();
            Ok(Table::scalar(
                "Qual",
                Value::Int(if n == 1234 { 93 } else { 10 }),
            ))
        });
        ex.register("GetReliability", |_| {
            Ok(Table::scalar("Relia", Value::Int(87)))
        });
        ex.register("Fail", |_| Err(FedError::app_system("boom")));
        ex
    }

    fn linear_process() -> ProcessModel {
        ProcessBuilder::new("GetSuppQual")
            .input(&[("SupplierName", DataType::Varchar)])
            .program(
                "GetSupplierNo",
                "GetSupplierNo",
                vec![DataBinding::new(
                    "SupplierName",
                    DataSource::input("SupplierName"),
                )],
                &[("SupplierNo", DataType::Int)],
            )
            .program(
                "GetQuality",
                "GetQuality",
                vec![DataBinding::new(
                    "SupplierNo",
                    DataSource::output("GetSupplierNo", "SupplierNo"),
                )],
                &[("Qual", DataType::Int)],
            )
            .sequence(&["GetSupplierNo", "GetQuality"])
            .output_table("GetQuality")
            .build()
            .unwrap()
    }

    fn run_process(p: &ProcessModel, threaded: bool) -> (ProcessInstance, Meter) {
        let engine = Engine::new(CostModel::default());
        let mut input = p.input.instantiate();
        if p.input.has_field(&Ident::new("SupplierName")) {
            input
                .set(&Ident::new("SupplierName"), Value::str("Acme"))
                .unwrap();
        }
        let ex = executor();
        let mut meter = Meter::new();
        let instance = if threaded {
            engine.run_threaded(p, &input, &ex, &mut meter).unwrap()
        } else {
            engine.run(p, &input, &ex, &mut meter).unwrap()
        };
        (instance, meter)
    }

    #[test]
    fn linear_process_produces_result() {
        let p = linear_process();
        let (instance, _) = run_process(&p, false);
        assert_eq!(instance.output.value(0, "Qual"), Some(&Value::Int(93)));
        assert_eq!(
            instance
                .audit
                .count_events(|e| matches!(e, AuditEvent::ActivityCompleted { .. })),
            2
        );
    }

    #[test]
    fn threaded_navigator_matches_sequential() {
        let p = linear_process();
        let (seq, m_seq) = run_process(&p, false);
        let (thr, m_thr) = run_process(&p, true);
        assert_eq!(seq.output, thr.output);
        assert_eq!(m_seq.now_us(), m_thr.now_us());
    }

    fn parallel_process() -> ProcessModel {
        // Two independent program activities (the independent case).
        ProcessBuilder::new("GetSuppQualRelia")
            .input(&[("SupplierName", DataType::Varchar)])
            .program(
                "A",
                "GetReliability",
                vec![DataBinding::new(
                    "SupplierName",
                    DataSource::input("SupplierName"),
                )],
                &[("Relia", DataType::Int)],
            )
            .program(
                "B",
                "GetReliability",
                vec![DataBinding::new(
                    "SupplierName",
                    DataSource::input("SupplierName"),
                )],
                &[("Relia", DataType::Int)],
            )
            .output_table("A")
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_activities_overlap_in_virtual_time() {
        let p = parallel_process();
        let (instance, meter) = run_process(&p, false);
        let cost = CostModel::default();
        let per_activity = cost.wf_navigation
            + cost.wf_activity_program_start
            + cost.wf_activity_container
            + cost.local_function_cost(1);
        // Elapsed is ONE activity's worth, booked is TWO activities' worth.
        assert_eq!(instance.elapsed_us(), per_activity);
        assert_eq!(meter.total_booked_us(), 2 * per_activity);
    }

    #[test]
    fn sequential_activities_accumulate_virtual_time() {
        let p = linear_process();
        let (instance, _) = run_process(&p, false);
        let cost = CostModel::default();
        let per_activity = cost.wf_navigation
            + cost.wf_activity_program_start
            + cost.wf_activity_container
            + cost.local_function_cost(1);
        assert_eq!(instance.elapsed_us(), 2 * per_activity);
    }

    #[test]
    fn false_transition_condition_skips_downstream() {
        let p = ProcessBuilder::new("cond")
            .input(&[])
            .program("A", "GetReliability", vec![], &[("Relia", DataType::Int)])
            .constant("B", 7)
            .connector_if("A", "B", Condition::cmp("Relia", CondOp::Lt, 0))
            .output_row(&[("x", DataType::Int, DataSource::output("B", "value"))])
            .build()
            .unwrap();
        let engine = Engine::new(CostModel::zero());
        let ex = executor();
        let mut meter = Meter::new();
        let input = p.input.instantiate();
        let instance = engine.run(&p, &input, &ex, &mut meter).unwrap();
        assert_eq!(
            instance
                .audit
                .count_events(|e| matches!(e, AuditEvent::ActivitySkipped)),
            1
        );
        // The skipped node contributes NULL to the output row.
        assert_eq!(instance.output.value(0, "x"), Some(&Value::Null));
    }

    #[test]
    fn retry_policy_retries_then_fails() {
        let p = ProcessBuilder::new("retrying")
            .input(&[])
            .program("F", "Fail", vec![], &[("x", DataType::Int)])
            .with_retry(3)
            .output_table("F")
            .build()
            .unwrap();
        let engine = Engine::new(CostModel::zero());
        let ex = executor();
        let mut meter = Meter::new();
        let input = p.input.instantiate();
        let err = engine.run(&p, &input, &ex, &mut meter).unwrap_err();
        assert!(err.to_string().contains("after 3 attempt"));
    }

    #[test]
    fn helper_cast_and_const() {
        let p = ProcessBuilder::new("simple_case")
            .input(&[("CompNo", DataType::Int)])
            .constant("SupplierConst", 1234)
            .cast("Widen", DataSource::input("CompNo"), DataType::BigInt)
            .connector("SupplierConst", "Widen")
            .output_row(&[
                (
                    "Supplier",
                    DataType::Int,
                    DataSource::output("SupplierConst", "value"),
                ),
                (
                    "Number",
                    DataType::BigInt,
                    DataSource::output("Widen", "value"),
                ),
            ])
            .build()
            .unwrap();
        let engine = Engine::new(CostModel::zero());
        let ex = executor();
        let mut meter = Meter::new();
        let mut input = p.input.instantiate();
        input.set(&Ident::new("CompNo"), Value::Int(42)).unwrap();
        let out = engine.run(&p, &input, &ex, &mut meter).unwrap().output;
        assert_eq!(out.value(0, "Supplier"), Some(&Value::Int(1234)));
        assert_eq!(out.value(0, "Number"), Some(&Value::BigInt(42)));
    }

    #[test]
    fn do_until_loop_accumulates() {
        // Body: GetName(i) -> (Name); loop i = 1..=3, accumulating names.
        let body = ProcessBuilder::new("body")
            .input(&[("i", DataType::Int)])
            .program(
                "GetName",
                "GetName",
                vec![DataBinding::new("CompNo", DataSource::input("i"))],
                &[("Name", DataType::Varchar)],
            )
            .add("Inc", DataSource::input("i"), DataSource::constant(1))
            .connector("GetName", "Inc")
            .output_row(&[
                (
                    "Name",
                    DataType::Varchar,
                    DataSource::output("GetName", "Name"),
                ),
                ("i", DataType::Int, DataSource::output("Inc", "value")),
            ])
            .build()
            .unwrap();
        let p = ProcessBuilder::new("AllCompNames")
            .input(&[("N", DataType::Int)])
            .loop_node(LoopNode {
                name: Ident::new("NameLoop"),
                vars: ContainerSchema::new(&[("i", DataType::Int)]),
                init: vec![DataBinding::new("i", DataSource::constant(1))],
                body,
                update: vec![(Ident::new("i"), Ident::new("i"))],
                counter: None,
                until: Condition::cmp("i", CondOp::Gt, 3),
                accumulate: true,
                max_iterations: 100,
            })
            .output_table("NameLoop")
            .build()
            .unwrap();
        let mut ex = EchoExecutor::new();
        ex.register("GetName", |args| {
            Ok(Table::scalar(
                "Name",
                Value::str(format!("comp-{}", args[0].as_i64().unwrap())),
            ))
        });
        let engine = Engine::new(CostModel::zero());
        let mut meter = Meter::new();
        let mut input = p.input.instantiate();
        input.set(&Ident::new("N"), Value::Int(3)).unwrap();
        let instance = engine.run(&p, &input, &ex, &mut meter).unwrap();
        // Output has one accumulated row per iteration... with both columns
        // of the body output.
        assert_eq!(instance.output.row_count(), 3);
        assert_eq!(
            instance.output.value(0, "Name"),
            Some(&Value::str("comp-1"))
        );
        assert_eq!(
            instance.output.value(2, "Name"),
            Some(&Value::str("comp-3"))
        );
        assert_eq!(
            instance
                .audit
                .count_events(|e| matches!(e, AuditEvent::LoopIteration { .. })),
            3
        );
    }

    #[test]
    fn loop_respects_max_iterations() {
        let body = ProcessBuilder::new("body")
            .input(&[("i", DataType::Int)])
            .add("Inc", DataSource::input("i"), DataSource::constant(0))
            .output_row(&[("i", DataType::Int, DataSource::output("Inc", "value"))])
            .build()
            .unwrap();
        let p = ProcessBuilder::new("diverge")
            .input(&[])
            .loop_node(LoopNode {
                name: Ident::new("L"),
                vars: ContainerSchema::new(&[("i", DataType::Int)]),
                init: vec![DataBinding::new("i", DataSource::constant(0))],
                body,
                update: vec![(Ident::new("i"), Ident::new("i"))],
                counter: None,
                until: Condition::cmp("i", CondOp::Gt, 10),
                accumulate: false,
                max_iterations: 5,
            })
            .output_table("L")
            .build()
            .unwrap();
        let engine = Engine::new(CostModel::zero());
        let ex = EchoExecutor::new();
        let mut meter = Meter::new();
        let input = p.input.instantiate();
        let err = engine.run(&p, &input, &ex, &mut meter).unwrap_err();
        assert!(err.to_string().contains("max_iterations"));
    }

    #[test]
    fn loop_time_is_linear_in_iterations() {
        // The AllCompNames measurement: elapsed time rises linearly with
        // the number of calls of the same local function.
        let elapsed_for = |n: i32| -> u64 {
            let body = ProcessBuilder::new("body")
                .input(&[("i", DataType::Int)])
                .program(
                    "GetName",
                    "GetName",
                    vec![DataBinding::new("CompNo", DataSource::input("i"))],
                    &[("Name", DataType::Varchar)],
                )
                .add("Inc", DataSource::input("i"), DataSource::constant(1))
                .connector("GetName", "Inc")
                .output_row(&[("i", DataType::Int, DataSource::output("Inc", "value"))])
                .build()
                .unwrap();
            let p = ProcessBuilder::new("AllCompNames")
                .input(&[])
                .loop_node(LoopNode {
                    name: Ident::new("L"),
                    vars: ContainerSchema::new(&[("i", DataType::Int)]),
                    init: vec![DataBinding::new("i", DataSource::constant(1))],
                    body,
                    update: vec![(Ident::new("i"), Ident::new("i"))],
                    counter: None,
                    until: Condition::cmp("i", CondOp::Gt, n),
                    accumulate: false,
                    max_iterations: 10_000,
                })
                .output_table("L")
                .build()
                .unwrap();
            let mut ex = EchoExecutor::new();
            ex.register("GetName", |_| Ok(Table::scalar("Name", Value::str("x"))));
            let engine = Engine::new(CostModel::default());
            let mut meter = Meter::new();
            let input = p.input.instantiate();
            engine
                .run(&p, &input, &ex, &mut meter)
                .unwrap()
                .elapsed_us()
        };
        let t1 = elapsed_for(1);
        let t2 = elapsed_for(2);
        let t4 = elapsed_for(4);
        let step = t2 - t1;
        assert_eq!(t4 - t2, 2 * step, "per-iteration cost must be constant");
    }

    #[test]
    fn program_output_schema_mismatch_detected() {
        let p = ProcessBuilder::new("bad")
            .input(&[])
            .program("A", "GetReliability", vec![], &[("Wrong", DataType::Int)])
            .output_table("A")
            .build()
            .unwrap();
        let engine = Engine::new(CostModel::zero());
        let ex = executor();
        let mut meter = Meter::new();
        let input = p.input.instantiate();
        assert!(engine.run(&p, &input, &ex, &mut meter).is_err());
    }

    #[test]
    fn wrong_input_container_rejected() {
        let p = linear_process();
        let engine = Engine::new(CostModel::zero());
        let ex = executor();
        let mut meter = Meter::new();
        let wrong = ContainerSchema::new(&[("other", DataType::Int)]).instantiate();
        assert!(engine.run(&p, &wrong, &ex, &mut meter).is_err());
    }
}
