//! Typed input/output containers — the data vessels MQSeries Workflow
//! passes between activities.

use std::collections::BTreeMap;
use std::fmt;

use fedwf_types::{implicit_cast, DataType, FedError, FedResult, Ident, Value};

/// The declared fields of a container.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContainerSchema {
    fields: Vec<(Ident, DataType)>,
}

impl ContainerSchema {
    pub fn new(fields: &[(&str, DataType)]) -> ContainerSchema {
        ContainerSchema {
            fields: fields.iter().map(|(n, t)| (Ident::new(*n), *t)).collect(),
        }
    }

    pub fn empty() -> ContainerSchema {
        ContainerSchema::default()
    }

    pub fn fields(&self) -> &[(Ident, DataType)] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field_type(&self, name: &Ident) -> Option<DataType> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
    }

    pub fn has_field(&self, name: &Ident) -> bool {
        self.field_type(name).is_some()
    }

    /// Instantiate an empty (all-unset) container of this schema.
    pub fn instantiate(&self) -> Container {
        Container {
            schema: self.clone(),
            values: BTreeMap::new(),
        }
    }
}

/// A container instance: named, typed slots. Unset slots read as NULL.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    schema: ContainerSchema,
    values: BTreeMap<Ident, Value>,
}

impl Container {
    pub fn schema(&self) -> &ContainerSchema {
        &self.schema
    }

    /// Set a field, implicit-widening the value to the declared type.
    pub fn set(&mut self, name: &Ident, value: Value) -> FedResult<()> {
        let dt = self
            .schema
            .field_type(name)
            .ok_or_else(|| FedError::workflow(format!("container has no field {name}")))?;
        let coerced = implicit_cast(&value, dt)
            .map_err(|e| FedError::workflow(format!("field {name}: {e}")))?;
        self.values.insert(name.clone(), coerced);
        Ok(())
    }

    /// Read a field; unset fields are NULL.
    pub fn get(&self, name: &Ident) -> FedResult<Value> {
        if !self.schema.has_field(name) {
            return Err(FedError::workflow(format!("container has no field {name}")));
        }
        Ok(self.values.get(name).cloned().unwrap_or(Value::Null))
    }

    /// Whether every field has been set (used to validate process outputs).
    pub fn fully_set(&self) -> bool {
        self.schema
            .fields
            .iter()
            .all(|(n, _)| self.values.contains_key(n))
    }

    /// The values in schema order (for turning a container into a row).
    pub fn values_in_order(&self) -> Vec<Value> {
        self.schema
            .fields
            .iter()
            .map(|(n, _)| self.values.get(n).cloned().unwrap_or(Value::Null))
            .collect()
    }
}

impl fmt::Display for Container {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, _)) in self.schema.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let v = self.values.get(n).cloned().unwrap_or(Value::Null);
            write!(f, "{n}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ContainerSchema {
        ContainerSchema::new(&[("SupplierNo", DataType::Int), ("Name", DataType::Varchar)])
    }

    #[test]
    fn set_get_round_trip() {
        let mut c = schema().instantiate();
        c.set(&Ident::new("SupplierNo"), Value::Int(1234)).unwrap();
        assert_eq!(c.get(&Ident::new("supplierno")).unwrap(), Value::Int(1234));
    }

    #[test]
    fn unset_reads_null() {
        let c = schema().instantiate();
        assert_eq!(c.get(&Ident::new("Name")).unwrap(), Value::Null);
        assert!(!c.fully_set());
    }

    #[test]
    fn unknown_field_errors() {
        let mut c = schema().instantiate();
        assert!(c.set(&Ident::new("Nope"), Value::Int(1)).is_err());
        assert!(c.get(&Ident::new("Nope")).is_err());
    }

    #[test]
    fn widening_allowed_narrowing_rejected() {
        let s = ContainerSchema::new(&[("big", DataType::BigInt)]);
        let mut c = s.instantiate();
        c.set(&Ident::new("big"), Value::Int(5)).unwrap();
        assert_eq!(c.get(&Ident::new("big")).unwrap(), Value::BigInt(5));
        let s2 = ContainerSchema::new(&[("small", DataType::Int)]);
        let mut c2 = s2.instantiate();
        assert!(c2.set(&Ident::new("small"), Value::BigInt(5)).is_err());
    }

    #[test]
    fn values_in_order_follow_schema() {
        let mut c = schema().instantiate();
        c.set(&Ident::new("Name"), Value::str("Acme")).unwrap();
        assert_eq!(c.values_in_order(), vec![Value::Null, Value::str("Acme")]);
    }

    #[test]
    fn fully_set_after_all_fields() {
        let mut c = schema().instantiate();
        c.set(&Ident::new("SupplierNo"), Value::Int(1)).unwrap();
        c.set(&Ident::new("Name"), Value::str("x")).unwrap();
        assert!(c.fully_set());
    }
}
