//! # fedwf-wfms
//!
//! A production-workflow management system in the style of MQSeries
//! Workflow / FlowMark, the engine the paper couples to the FDBS. The
//! feature set covers exactly what the paper's mappings need, and the
//! engine is built so that execution cost is *accounted in virtual time*
//! through [`fedwf_sim`]:
//!
//! * **process models** with program activities (invoking predefined local
//!   functions through a pluggable [`ProgramExecutor`]) and *helper
//!   activities* (type casts, constants, result composition — Section 3's
//!   simple/independent cases);
//! * **control connectors** with transition conditions; activities whose
//!   incoming connectors all fired run — logically in parallel when they
//!   are mutually unordered (the engine schedules each node at the max of
//!   its predecessors' virtual completion times, so a fork/join block costs
//!   the maximum, not the sum, of its branches);
//! * **data connectors** feeding activity input containers from process
//!   input, upstream outputs, or constants;
//! * **do-until loops over sub-workflows** — the cyclic-dependency case the
//!   UDTF architecture cannot express;
//! * **audit trail** and per-activity retry policies;
//! * a real **multi-threaded navigator** (scoped std threads) that executes
//!   unordered activities on worker threads, with results and virtual-time
//!   accounting identical to the sequential navigator (property-tested).
//!
//! # Example
//!
//! ```
//! use fedwf_wfms::{DataBinding, DataSource, EchoExecutor, Engine, ProcessBuilder};
//! use fedwf_sim::{CostModel, Meter};
//! use fedwf_types::{DataType, Ident, Table, Value};
//!
//! // A two-step process: resolve a supplier number, then its quality.
//! let process = ProcessBuilder::new("GetSuppQual")
//!     .input(&[("SupplierName", DataType::Varchar)])
//!     .program(
//!         "GetSupplierNo",
//!         "GetSupplierNo",
//!         vec![DataBinding::new("SupplierName", DataSource::input("SupplierName"))],
//!         &[("SupplierNo", DataType::Int)],
//!     )
//!     .program(
//!         "GetQuality",
//!         "GetQuality",
//!         vec![DataBinding::new(
//!             "SupplierNo",
//!             DataSource::output("GetSupplierNo", "SupplierNo"),
//!         )],
//!         &[("Qual", DataType::Int)],
//!     )
//!     .sequence(&["GetSupplierNo", "GetQuality"])
//!     .output_table("GetQuality")
//!     .build()?;
//!
//! // Program implementations (normally the application systems).
//! let mut executor = EchoExecutor::new();
//! executor.register("GetSupplierNo", |_| Ok(Table::scalar("SupplierNo", Value::Int(1234))));
//! executor.register("GetQuality", |_| Ok(Table::scalar("Qual", Value::Int(93))));
//!
//! let engine = Engine::new(CostModel::zero());
//! let mut input = process.input.instantiate();
//! input.set(&Ident::new("SupplierName"), Value::str("Acme"))?;
//! let mut meter = Meter::new();
//! let instance = engine.run(&process, &input, &executor, &mut meter)?;
//! assert_eq!(instance.output.value(0, "Qual"), Some(&Value::Int(93)));
//! # Ok::<(), fedwf_types::FedError>(())
//! ```

pub mod audit;
pub mod builder;
pub mod condition;
pub mod container;
pub mod engine;
pub mod fdl;
pub mod model;

pub use audit::{AuditEvent, AuditRecord, AuditTrail};
pub use builder::ProcessBuilder;
pub use condition::{CondOp, Condition};
pub use container::{Container, ContainerSchema};
pub use engine::{EchoExecutor, Engine, ProcessInstance, ProgramExecutor};
pub use fdl::{export_fdl, parse_fdl};
pub use model::{
    Activity, ActivityKind, ControlConnector, DataBinding, DataSource, HelperOp, LoopNode, Node,
    OutputSource, ProcessModel, RetryPolicy,
};
