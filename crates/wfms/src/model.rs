//! The process model: activities, connectors, loops.
//!
//! The model follows the production-workflow vocabulary of Leymann/Roller
//! (the book the paper cites): *program activities* call external programs
//! (here: predefined local functions of application systems), *control
//! connectors* with transition conditions span the precedence graph, *data
//! connectors* feed input containers, and *blocks* with an until-condition
//! provide iteration.

use fedwf_types::{DataType, FedError, FedResult, Ident, Schema, SchemaRef, Value};
use std::sync::Arc;

use crate::condition::Condition;
use crate::container::ContainerSchema;

/// Where an activity input (or an output field) takes its value from.
#[derive(Debug, Clone, PartialEq)]
pub enum DataSource {
    /// A field of the process input container.
    ProcessInput(Ident),
    /// A column of an upstream activity's (first) result row.
    ActivityOutput { activity: Ident, field: Ident },
    /// A constant supplied by the mapping — the paper's *simple case*
    /// ("the workflow solution can supply a constant value when calling
    /// the local function").
    Constant(Value),
}

impl DataSource {
    pub fn input(name: &str) -> DataSource {
        DataSource::ProcessInput(Ident::new(name))
    }

    pub fn output(activity: &str, field: &str) -> DataSource {
        DataSource::ActivityOutput {
            activity: Ident::new(activity),
            field: Ident::new(field),
        }
    }

    pub fn constant(value: impl Into<Value>) -> DataSource {
        DataSource::Constant(value.into())
    }
}

/// A data connector: fills `target` (an input-container field) from a
/// source.
#[derive(Debug, Clone, PartialEq)]
pub struct DataBinding {
    pub target: Ident,
    pub source: DataSource,
}

impl DataBinding {
    pub fn new(target: &str, source: DataSource) -> DataBinding {
        DataBinding {
            target: Ident::new(target),
            source,
        }
    }
}

/// Built-in helper activities — the glue the paper's WfMS mappings use for
/// type conversions, constants and result composition.
#[derive(Debug, Clone, PartialEq)]
pub enum HelperOp {
    /// Cast a value to another type (simple case).
    Cast {
        input: DataSource,
        to: DataType,
        output_field: Ident,
    },
    /// Produce a constant (simple case).
    Const { value: Value, output_field: Ident },
    /// Inner-join the result tables of two upstream activities on one
    /// column each and project columns from both sides (independent case:
    /// "results are combined by a helper function").
    Join {
        left: Ident,
        right: Ident,
        left_on: Ident,
        right_on: Ident,
        /// (take-from-left?, source column, output name)
        project: Vec<(bool, Ident, Ident)>,
    },
    /// Integer addition of two sources (loop counters).
    Add {
        left: DataSource,
        right: DataSource,
        output_field: Ident,
    },
}

/// What an activity does.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivityKind {
    /// Call a predefined local function of an application system. Inputs
    /// are bound in the order given and passed positionally.
    Program {
        function: String,
        inputs: Vec<DataBinding>,
    },
    /// A built-in helper.
    Helper(HelperOp),
}

/// Per-activity error handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 1 }
    }
}

/// One activity of a process.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    pub name: Ident,
    pub kind: ActivityKind,
    /// Declared output container schema; a program activity's result table
    /// must match it.
    pub output: ContainerSchema,
    pub retry: RetryPolicy,
}

/// A do-until loop over a sub-workflow — the cyclic-dependency case.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNode {
    pub name: Ident,
    /// The loop variables (the loop's private container).
    pub vars: ContainerSchema,
    /// Initial values of the loop variables.
    pub init: Vec<DataBinding>,
    /// The sub-workflow executed each iteration; its process input schema
    /// must equal `vars`.
    pub body: ProcessModel,
    /// After each iteration: `var := body-output-field`.
    pub update: Vec<(Ident, Ident)>,
    /// Built-in counter: after each iteration `var := var + step`, applied
    /// before the until-condition. Lets the loop body stay a pure function
    /// call (the counter bookkeeping is the engine's job).
    pub counter: Option<(Ident, i64)>,
    /// Loop exits when this condition over the (updated) vars holds
    /// (do-until: the body always runs at least once).
    pub until: Condition,
    /// If set, the body's output rows are appended to the loop's result
    /// table each iteration; otherwise the loop yields the final vars as a
    /// single row.
    pub accumulate: bool,
    /// Safety bound against diverging loops.
    pub max_iterations: usize,
}

/// A node of the process graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Activity(Activity),
    Loop(LoopNode),
}

impl Node {
    pub fn name(&self) -> &Ident {
        match self {
            Node::Activity(a) => &a.name,
            Node::Loop(l) => &l.name,
        }
    }

    /// The schema of the node's result table.
    pub fn output_schema(&self) -> ContainerSchema {
        match self {
            Node::Activity(a) => a.output.clone(),
            Node::Loop(l) => {
                if l.accumulate {
                    l.body.output_schema()
                } else {
                    l.vars.clone()
                }
            }
        }
    }
}

/// A control connector: `from` must finish (and `condition` hold over its
/// output) before `to` may start.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlConnector {
    pub from: Ident,
    pub to: Ident,
    pub condition: Condition,
}

/// Where the process output container/table comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputSource {
    /// The whole result table of one node.
    NodeTable(Ident),
    /// A single row assembled from bindings.
    Row(Vec<(Ident, DataType, DataSource)>),
}

/// A complete process model (also used as a loop body / sub-workflow).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessModel {
    pub name: String,
    pub input: ContainerSchema,
    pub nodes: Vec<Node>,
    pub connectors: Vec<ControlConnector>,
    pub output: OutputSource,
}

impl ProcessModel {
    pub fn node(&self, name: &Ident) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name() == name)
    }

    /// The schema of the process result table.
    pub fn output_schema(&self) -> ContainerSchema {
        match &self.output {
            OutputSource::NodeTable(name) => self
                .node(name)
                .map(|n| n.output_schema())
                .unwrap_or_else(ContainerSchema::empty),
            OutputSource::Row(fields) => {
                let spec: Vec<(&str, DataType)> =
                    fields.iter().map(|(n, t, _)| (n.as_str(), *t)).collect();
                ContainerSchema::new(&spec)
            }
        }
    }

    /// The output schema as a relational [`Schema`].
    pub fn output_table_schema(&self) -> SchemaRef {
        let cs = self.output_schema();
        Arc::new(Schema::of(
            &cs.fields()
                .iter()
                .map(|(n, t)| (n.as_str(), *t))
                .collect::<Vec<_>>(),
        ))
    }

    /// Direct control predecessors of a node.
    pub fn predecessors(&self, name: &Ident) -> Vec<&Ident> {
        self.connectors
            .iter()
            .filter(|c| &c.to == name)
            .map(|c| &c.from)
            .collect()
    }

    /// Topological order of the nodes; errors on a cycle. Ties broken by
    /// declaration order, so the result is deterministic.
    pub fn topo_order(&self) -> FedResult<Vec<&Ident>> {
        let names: Vec<&Ident> = self.nodes.iter().map(|n| n.name()).collect();
        let mut in_deg: Vec<usize> = names.iter().map(|n| self.predecessors(n).len()).collect();
        let mut order = Vec::with_capacity(names.len());
        let mut done = vec![false; names.len()];
        loop {
            let next = (0..names.len()).find(|&i| !done[i] && in_deg[i] == 0);
            let Some(i) = next else { break };
            done[i] = true;
            order.push(names[i]);
            for c in &self.connectors {
                if &c.from == names[i] {
                    if let Some(j) = names.iter().position(|n| **n == c.to) {
                        in_deg[j] -= 1;
                    }
                }
            }
        }
        if order.len() != names.len() {
            return Err(FedError::workflow(format!(
                "process {} has a control-flow cycle",
                self.name
            )));
        }
        Ok(order)
    }

    /// Number of program activities (recursing into loop bodies) — the
    /// paper's "number of functions integrated".
    pub fn program_activity_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Activity(a) => match a.kind {
                    ActivityKind::Program { .. } => 1,
                    ActivityKind::Helper(_) => 0,
                },
                Node::Loop(l) => l.body.program_activity_count(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(name: &str) -> Node {
        Node::Activity(Activity {
            name: Ident::new(name),
            kind: ActivityKind::Helper(HelperOp::Const {
                value: Value::Int(0),
                output_field: Ident::new("x"),
            }),
            output: ContainerSchema::new(&[("x", DataType::Int)]),
            retry: RetryPolicy::default(),
        })
    }

    fn connector(from: &str, to: &str) -> ControlConnector {
        ControlConnector {
            from: Ident::new(from),
            to: Ident::new(to),
            condition: Condition::True,
        }
    }

    fn diamond() -> ProcessModel {
        ProcessModel {
            name: "diamond".into(),
            input: ContainerSchema::empty(),
            nodes: vec![activity("a"), activity("b"), activity("c"), activity("d")],
            connectors: vec![
                connector("a", "b"),
                connector("a", "c"),
                connector("b", "d"),
                connector("c", "d"),
            ],
            output: OutputSource::NodeTable(Ident::new("d")),
        }
    }

    #[test]
    fn topo_order_respects_edges() {
        let p = diamond();
        let order = p.topo_order().unwrap();
        let pos = |n: &str| order.iter().position(|x| **x == Ident::new(n)).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("a") < pos("c"));
        assert!(pos("b") < pos("d"));
        assert!(pos("c") < pos("d"));
    }

    #[test]
    fn topo_order_is_deterministic_by_declaration() {
        let p = diamond();
        let order = p.topo_order().unwrap();
        // b declared before c, both ready after a.
        assert_eq!(
            order,
            vec![
                &Ident::new("a"),
                &Ident::new("b"),
                &Ident::new("c"),
                &Ident::new("d")
            ]
        );
    }

    #[test]
    fn cycle_is_detected() {
        let mut p = diamond();
        p.connectors.push(connector("d", "a"));
        assert!(p.topo_order().is_err());
    }

    #[test]
    fn output_schema_from_node() {
        let p = diamond();
        let s = p.output_schema();
        assert_eq!(s.len(), 1);
        assert!(s.has_field(&Ident::new("x")));
    }

    #[test]
    fn output_schema_from_row_spec() {
        let mut p = diamond();
        p.output = OutputSource::Row(vec![(
            Ident::new("Answer"),
            DataType::Varchar,
            DataSource::constant("yes"),
        )]);
        assert_eq!(
            p.output_table_schema().columns()[0].data_type,
            DataType::Varchar
        );
    }

    #[test]
    fn predecessors_listed() {
        let p = diamond();
        let preds = p.predecessors(&Ident::new("d"));
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn program_activity_count_skips_helpers() {
        let mut p = diamond();
        assert_eq!(p.program_activity_count(), 0);
        p.nodes.push(Node::Activity(Activity {
            name: Ident::new("prog"),
            kind: ActivityKind::Program {
                function: "GetQuality".into(),
                inputs: vec![],
            },
            output: ContainerSchema::new(&[("Qual", DataType::Int)]),
            retry: RetryPolicy::default(),
        }));
        assert_eq!(p.program_activity_count(), 1);
    }
}
